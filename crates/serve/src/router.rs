//! The sharded serving front end: `taxorec-router` (DESIGN.md §16).
//!
//! A std-only HTTP proxy that fronts a fleet of `taxorec-serve` shard
//! workers. Users are partitioned across shards by the consistent-hash
//! [`Ring`](crate::ring::Ring) — a *locality* optimization: every shard
//! loads the same full `.taxo` artifact, so any shard answers any user
//! bit-identically and the ring only decides whose response cache gets
//! warm for whom. That asymmetry is what makes failover trivial to
//! reason about: routing around a dead owner changes latency, never
//! results.
//!
//! ## Request path (`/recommend`, `/explain`)
//!
//! 1. Hash the `user` parameter; walk the ring's candidate order
//!    (owner first, then each remaining shard exactly once).
//! 2. Skip candidates the router believes are unavailable: health
//!    `down`/`draining` (from the background prober) or an open
//!    circuit [`Breaker`](crate::breaker::Breaker).
//! 3. Forward upstream with the client's trace id in an
//!    `x-taxorec-trace` header, so shard-side spans join the router's
//!    trace tree. Connection-refused upstreams are retried on a
//!    decorrelated-jitter schedule (reads are idempotent); any other
//!    transport error fails the candidate over to the next shard.
//! 4. **Hedging**: if the in-flight attempt has produced nothing after
//!    [`RouterOptions::hedge_after`], a second attempt is launched at
//!    the next candidate; first complete response wins. A shard wedged
//!    in a stall (`TAXOREC_FAULT=stall@…`) costs one hedge interval,
//!    not a client timeout.
//! 5. Every attempt is bounded by the remaining request deadline
//!    ([`RouterOptions::deadline`]). When no candidate is admissible
//!    or the deadline expires, the client gets `503` with a
//!    `Retry-After` header — the router never hangs a caller on a
//!    dead fleet.
//!
//! Transport failures and successes feed each shard's circuit breaker;
//! a tripped breaker short-circuits a dead shard to zero connect
//! attempts until its cooldown elapses (half-open probe).
//!
//! ## Control plane
//!
//! A background prober polls every shard's `/healthz` each
//! [`RouterOptions::probe_interval`], caching readiness
//! (`ready`/`degraded`/`draining`/`down`) plus the shard's advertised
//! identity and loaded-checkpoint fingerprint (version/CRC). Routing
//! reads that cache — probe latency is never on the request path.
//!
//! | Path              | Answered by                                         |
//! |-------------------|-----------------------------------------------------|
//! | `/recommend`      | proxied to the owning shard (failover + hedging)    |
//! | `/explain`        | proxied likewise                                    |
//! | `/healthz`        | aggregate fleet view (per-shard state + checkpoint) |
//! | `/metrics`        | the router's own registry (RED per shard)           |
//! | `/metrics.json`   | the router's own registry snapshot                  |
//! | `/shards/metrics` | all shard expositions merged, `shard="i"` label     |
//!
//! Proxied responses carry `x-taxorec-shard: <i>` naming the shard that
//! actually answered — the observable failover signal the chaos test
//! asserts on.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use taxorec_resilience::{DecorrelatedJitter, RetryPolicy};
use taxorec_telemetry::json::push_str_escaped;
use taxorec_telemetry::{trace, TraceContext};

use crate::breaker::Breaker;
use crate::http::{error_json, read_head, require_param, respond_with};
use crate::ring::Ring;

const JSON_CONTENT_TYPE: &str = "application/json";
/// Worker condvar poll interval (shutdown-flag recheck bound).
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Tuning knobs for [`route_with`]. [`RouterOptions::from_env`] reads
/// the `TAXOREC_ROUTER_*` variables; [`Default`] ignores the
/// environment.
#[derive(Clone, Debug)]
pub struct RouterOptions {
    /// Front-end worker threads (≥ 1 enforced).
    /// Env: `TAXOREC_ROUTER_WORKERS`.
    pub n_workers: usize,
    /// Client-side read/write deadline.
    /// Env: `TAXOREC_ROUTER_TIMEOUT_MS`.
    pub io_timeout: Duration,
    /// Accepted client connections allowed to wait for a worker.
    /// Env: `TAXOREC_ROUTER_MAX_QUEUE`.
    pub max_queue: usize,
    /// Largest client request head accepted.
    pub max_request_bytes: usize,
    /// How often the background prober polls each shard's `/healthz`.
    /// Env: `TAXOREC_ROUTER_PROBE_MS`.
    pub probe_interval: Duration,
    /// Upstream connect deadline per attempt.
    /// Env: `TAXOREC_ROUTER_CONNECT_MS`.
    pub connect_timeout: Duration,
    /// Silence threshold before a hedged second attempt is launched at
    /// the next candidate shard.
    /// Env: `TAXOREC_ROUTER_HEDGE_MS`.
    pub hedge_after: Duration,
    /// Total per-request budget across all candidates, retries, and
    /// hedges. Env: `TAXOREC_ROUTER_DEADLINE_MS`.
    pub deadline: Duration,
    /// Retry schedule for connection-refused upstreams (a shard
    /// restarting mid-reload). Only idempotent reads flow through the
    /// router, so re-sending is always safe.
    pub retry: RetryPolicy,
    /// Consecutive transport failures that open a shard's breaker.
    /// Env: `TAXOREC_ROUTER_BREAKER_FAILURES`.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses before a half-open probe.
    /// Env: `TAXOREC_ROUTER_BREAKER_COOLDOWN_MS`.
    pub breaker_cooldown: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            n_workers: 4,
            io_timeout: Duration::from_secs(5),
            max_queue: 128,
            max_request_bytes: 16 * 1024,
            probe_interval: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(250),
            hedge_after: Duration::from_millis(50),
            deadline: Duration::from_secs(2),
            retry: RetryPolicy {
                max_attempts: 3,
                initial_backoff: Duration::from_millis(5),
                multiplier: 2,
                max_backoff: Duration::from_millis(50),
            },
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
        }
    }
}

impl RouterOptions {
    /// Defaults overridden by the `TAXOREC_ROUTER_*` variables where
    /// set and parseable.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Some(w) = env_usize("TAXOREC_ROUTER_WORKERS") {
            o.n_workers = w.clamp(1, 64);
        }
        if let Some(ms) = env_usize("TAXOREC_ROUTER_TIMEOUT_MS") {
            o.io_timeout = Duration::from_millis(ms.max(1) as u64);
        }
        if let Some(q) = env_usize("TAXOREC_ROUTER_MAX_QUEUE") {
            o.max_queue = q.max(1);
        }
        if let Some(ms) = env_usize("TAXOREC_ROUTER_PROBE_MS") {
            o.probe_interval = Duration::from_millis(ms.max(10) as u64);
        }
        if let Some(ms) = env_usize("TAXOREC_ROUTER_CONNECT_MS") {
            o.connect_timeout = Duration::from_millis(ms.max(1) as u64);
        }
        if let Some(ms) = env_usize("TAXOREC_ROUTER_HEDGE_MS") {
            o.hedge_after = Duration::from_millis(ms.max(1) as u64);
        }
        if let Some(ms) = env_usize("TAXOREC_ROUTER_DEADLINE_MS") {
            o.deadline = Duration::from_millis(ms.max(10) as u64);
        }
        if let Some(n) = env_usize("TAXOREC_ROUTER_BREAKER_FAILURES") {
            o.breaker_threshold = n.clamp(1, 1000) as u32;
        }
        if let Some(ms) = env_usize("TAXOREC_ROUTER_BREAKER_COOLDOWN_MS") {
            o.breaker_cooldown = Duration::from_millis(ms.max(1) as u64);
        }
        o
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

// Router's view of one shard, refreshed by the prober.
const SHARD_UNKNOWN: u8 = 0; // not yet probed — routable (cold start)
const SHARD_READY: u8 = 1;
const SHARD_DEGRADED: u8 = 2;
const SHARD_DRAINING: u8 = 3;
const SHARD_DOWN: u8 = 4;

fn shard_state_label(state: u8) -> &'static str {
    match state {
        SHARD_READY => "ready",
        SHARD_DEGRADED => "degraded",
        SHARD_DRAINING => "draining",
        SHARD_DOWN => "down",
        _ => "unknown",
    }
}

/// Shard identity + checkpoint fingerprint scraped from its `/healthz`.
#[derive(Clone, Debug, Default)]
struct ShardMeta {
    id: Option<String>,
    /// `(version, crc, bytes)` of the shard's loaded artifact.
    checkpoint: Option<(u64, u64, u64)>,
}

/// One shard's routing state: address, last probed health, breaker,
/// and scraped identity.
struct ShardState {
    addr: SocketAddr,
    health: AtomicU8,
    breaker: Mutex<Breaker>,
    meta: Mutex<ShardMeta>,
}

impl ShardState {
    /// Is this shard worth attempting right now? Health says the
    /// process looked alive at the last probe (or has not been probed
    /// yet) and is not advertising a drain; the breaker admits the
    /// attempt (possibly as a half-open trial).
    fn admissible(&self, now: Instant) -> bool {
        let h = self.health.load(Ordering::SeqCst);
        if h == SHARD_DOWN || h == SHARD_DRAINING {
            return false;
        }
        self.breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .allow(now)
    }
}

/// State shared by the acceptor, workers, prober, and the handle.
struct RouterShared {
    shutdown: AtomicBool,
    draining: AtomicBool,
    queue: Mutex<VecDeque<(TcpStream, TraceContext, Instant)>>,
    ready: Condvar,
    ring: Ring,
    shards: Vec<ShardState>,
    opts: RouterOptions,
}

/// A running router: joinable acceptor, worker, and prober threads.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address actually bound (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Marks the router `draining` on `/healthz` without stopping it.
    pub fn set_draining(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Stops accepting, finishes queued requests, joins all threads.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Binds `addr` and routes across `shards` with environment-tuned
/// options.
pub fn route(shards: Vec<SocketAddr>, addr: &str) -> std::io::Result<RouterHandle> {
    route_with(shards, addr, RouterOptions::from_env())
}

/// [`route`] with explicit [`RouterOptions`].
pub fn route_with(
    shards: Vec<SocketAddr>,
    addr: &str,
    opts: RouterOptions,
) -> std::io::Result<RouterHandle> {
    if shards.is_empty() {
        return Err(std::io::Error::other("a router needs at least one shard"));
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let ring = Ring::new(shards.len());
    let shard_states = shards
        .iter()
        .map(|&a| ShardState {
            addr: a,
            health: AtomicU8::new(SHARD_UNKNOWN),
            breaker: Mutex::new(Breaker::new(opts.breaker_threshold, opts.breaker_cooldown)),
            meta: Mutex::new(ShardMeta::default()),
        })
        .collect();
    let n_workers = opts.n_workers.max(1);
    let shared = Arc::new(RouterShared {
        shutdown: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        ring,
        shards: shard_states,
        opts,
    });
    // Gauges registered up front so `/metrics` shows the fleet at zero.
    for i in 0..shards.len() {
        taxorec_telemetry::gauge(&format!("router.shard.{i}.up")).set(0.0);
    }
    let mut threads = Vec::with_capacity(n_workers + 2);
    for i in 0..n_workers {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("taxorec-router-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("taxorec-router-probe".into())
                .spawn(move || prober_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("taxorec-router-accept".into())
                .spawn(move || acceptor_loop(listener, &shared))?,
        );
    }
    Ok(RouterHandle {
        addr,
        shared,
        threads,
    })
}

fn acceptor_loop(listener: TcpListener, shared: &RouterShared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(mut stream) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_read_timeout(Some(shared.opts.io_timeout));
                let _ = stream.set_write_timeout(Some(shared.opts.io_timeout));
                let ctx = trace::mint();
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.len() >= shared.opts.max_queue {
                    drop(q);
                    taxorec_telemetry::counter("router.shed").inc(1);
                    let _ = respond_with(
                        &mut stream,
                        503,
                        ctx.trace_id,
                        JSON_CONTENT_TYPE,
                        "Retry-After: 1\r\n",
                        &error_json("router overloaded; retry later"),
                    );
                    continue;
                }
                q.push_back((stream, ctx, Instant::now()));
                taxorec_telemetry::gauge("router.queue.depth").set(q.len() as f64);
                drop(q);
                shared.ready.notify_one();
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    shared.ready.notify_all();
}

fn worker_loop(shared: &RouterShared) {
    loop {
        let next = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = q.pop_front() {
                    taxorec_telemetry::gauge("router.queue.depth").set(q.len() as f64);
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(q, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match next {
            Some((stream, ctx, accepted)) => handle_client(stream, ctx, accepted, shared),
            None => return,
        }
    }
}

fn handle_client(
    mut stream: TcpStream,
    ctx: TraceContext,
    accepted: Instant,
    shared: &RouterShared,
) {
    let _scope = trace::scope(ctx);
    let head = match read_head(&mut stream, shared.opts.max_request_bytes) {
        Some(h) => h,
        None => {
            let _ = respond_with(
                &mut stream,
                400,
                ctx.trace_id,
                JSON_CONTENT_TYPE,
                "",
                &error_json("malformed, oversized, or timed-out request"),
            );
            return;
        }
    };
    taxorec_telemetry::counter("router.requests").inc(1);
    let start = Instant::now();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        let _ = respond_with(
            &mut stream,
            405,
            ctx.trace_id,
            JSON_CONTENT_TYPE,
            "",
            &error_json(&format!("method {method:?} not allowed; use GET")),
        );
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let (status, body, content_type, extra_headers, endpoint) = match path {
        "/healthz" => (
            200,
            fleet_healthz_json(shared),
            JSON_CONTENT_TYPE,
            String::new(),
            "healthz",
        ),
        "/metrics" => (
            200,
            taxorec_telemetry::prometheus::render(),
            taxorec_telemetry::prometheus::CONTENT_TYPE,
            String::new(),
            "metrics",
        ),
        "/metrics.json" => (
            200,
            taxorec_telemetry::snapshot(),
            JSON_CONTENT_TYPE,
            String::new(),
            "metrics",
        ),
        "/shards/metrics" => (
            200,
            scrape_shard_metrics(shared),
            taxorec_telemetry::prometheus::CONTENT_TYPE,
            String::new(),
            "metrics",
        ),
        "/recommend" | "/explain" => {
            let endpoint = if path == "/recommend" {
                "recommend"
            } else {
                "explain"
            };
            match require_param(query, "user") {
                Err(msg) => (
                    400,
                    error_json(&msg),
                    JSON_CONTENT_TYPE,
                    String::new(),
                    endpoint,
                ),
                Ok(user) => match proxy(shared, ctx, target, user) {
                    Ok(resp) => (
                        resp.status,
                        resp.body,
                        // Leak-free &'static impossible for a passthrough
                        // type; shards only ever answer JSON here.
                        JSON_CONTENT_TYPE,
                        format!("x-taxorec-shard: {}\r\n", resp.shard),
                        endpoint,
                    ),
                    Err(unavailable) => {
                        taxorec_telemetry::counter("router.unavailable").inc(1);
                        let now = Instant::now();
                        let secs = retry_after_secs(shared.shards.iter().map(|s| {
                            s.breaker
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remaining_open(now)
                        }));
                        (
                            503,
                            error_json(&unavailable),
                            JSON_CONTENT_TYPE,
                            format!("Retry-After: {secs}\r\n"),
                            endpoint,
                        )
                    }
                },
            }
        }
        _ => (
            404,
            error_json(&format!("no route for {path:?}")),
            JSON_CONTENT_TYPE,
            String::new(),
            "other",
        ),
    };
    let _ = respond_with(
        &mut stream,
        status,
        ctx.trace_id,
        content_type,
        &extra_headers,
        &body,
    );
    let ms = start.elapsed().as_secs_f64() * 1e3;
    taxorec_telemetry::histogram(&format!("router.{endpoint}.ms")).observe(ms);
    taxorec_telemetry::counter(&format!("router.{endpoint}.requests")).inc(1);
    if status >= 400 {
        taxorec_telemetry::counter(&format!("router.{endpoint}.errors")).inc(1);
    }
    trace::emit_root_at("router", ctx, accepted, Instant::now());
}

/// `Retry-After` seconds derived from the fleet's breaker state: the
/// *minimum* remaining open interval across shards is the earliest
/// instant a retry can reach a half-open probe, rounded up to whole
/// seconds. A shard whose breaker is not refusing (closed, half-open,
/// or cooldown elapsed) could admit a retry immediately, so any such
/// shard floors the wait at the 1-second minimum the header resolves.
/// Pure over the injected per-breaker remainders, so tests drive it
/// with a synthetic clock.
fn retry_after_secs<I: IntoIterator<Item = Option<Duration>>>(remaining: I) -> u64 {
    let mut min: Option<Duration> = None;
    for r in remaining {
        match r {
            None => return 1,
            Some(d) => min = Some(min.map_or(d, |m| m.min(d))),
        }
    }
    min.map_or(1, |d| (d.as_secs_f64().ceil() as u64).max(1))
}

/// A parsed upstream response headed back to the client.
struct Proxied {
    status: u16,
    body: String,
    /// Index of the shard that actually answered.
    shard: u32,
}

/// Forwards `target` to the candidate shards for `user`: owner first,
/// bounded jittered retries on connection-refused, failover on any
/// other transport error, and a hedged second attempt when the
/// in-flight one has been silent for `hedge_after`. Returns the first
/// complete upstream response, or `Err(reason)` when every admissible
/// candidate failed or the deadline expired (the caller answers `503 +
/// Retry-After`).
fn proxy(
    shared: &RouterShared,
    ctx: TraceContext,
    target: &str,
    user: u32,
) -> Result<Proxied, String> {
    let opts = &shared.opts;
    let deadline = Instant::now() + opts.deadline;
    let candidates = shared.ring.candidates(user);
    let (tx, rx) = mpsc::channel::<(u32, std::io::Result<Proxied>)>();
    let mut next = 0usize; // next candidate position to consider
    let mut in_flight = 0usize;
    let mut hedged = false;
    let mut skipped = 0usize;
    let mut last_err: Option<String> = None;

    // Launches the next admissible candidate, if any.
    let launch = |next: &mut usize, in_flight: &mut usize, skipped: &mut usize| -> bool {
        while *next < candidates.len() {
            let shard_idx = candidates[*next];
            *next += 1;
            let shard = &shared.shards[shard_idx as usize];
            if !shard.admissible(Instant::now()) {
                *skipped += 1;
                taxorec_telemetry::counter("router.skipped").inc(1);
                continue;
            }
            let addr = shard.addr;
            let tx = tx.clone();
            let request = upstream_request(target, ctx.trace_id);
            let retry = opts.retry;
            let connect_timeout = opts.connect_timeout;
            let seed = ctx.trace_id ^ shard_idx as u64;
            let spawned = std::thread::Builder::new()
                .name(format!("taxorec-router-try-{shard_idx}"))
                .spawn(move || {
                    let result = attempt(addr, &request, connect_timeout, deadline, retry, seed)
                        .map(|(status, body)| Proxied {
                            status,
                            body,
                            shard: shard_idx,
                        });
                    let _ = tx.send((shard_idx, result));
                });
            if spawned.is_ok() {
                *in_flight += 1;
                return true;
            }
        }
        false
    };

    launch(&mut next, &mut in_flight, &mut skipped);
    if in_flight == 0 {
        return Err(format!(
            "no shard available for user {user} ({skipped} skipped: down, draining, or breaker open)"
        ));
    }
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(format!("deadline exceeded routing user {user}"));
        }
        // Wait for the in-flight attempt(s); wake early at the hedge
        // threshold if a second attempt hasn't been fired yet.
        let wait = if !hedged {
            opts.hedge_after.min(deadline - now)
        } else {
            deadline - now
        };
        match rx.recv_timeout(wait) {
            Ok((shard_idx, Ok(resp))) => {
                shard_success(shared, shard_idx);
                if hedged {
                    taxorec_telemetry::counter("router.hedge.won").inc(1);
                }
                return Ok(resp);
            }
            Ok((shard_idx, Err(e))) => {
                in_flight -= 1;
                shard_failure(shared, shard_idx);
                taxorec_telemetry::counter("router.failover").inc(1);
                last_err = Some(format!("shard {shard_idx}: {e}"));
                // Replace the failed attempt with the next candidate.
                if !launch(&mut next, &mut in_flight, &mut skipped) && in_flight == 0 {
                    return Err(format!(
                        "all shards failed for user {user}; last error: {}",
                        last_err.as_deref().unwrap_or("none")
                    ));
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err(format!("deadline exceeded routing user {user}"));
                }
                if !hedged {
                    hedged = true;
                    if launch(&mut next, &mut in_flight, &mut skipped) {
                        taxorec_telemetry::counter("router.hedge.fired").inc(1);
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All attempt threads gone without a success.
                return Err(format!(
                    "all shards failed for user {user}; last error: {}",
                    last_err.as_deref().unwrap_or("none")
                ));
            }
        }
    }
}

fn shard_success(shared: &RouterShared, shard_idx: u32) {
    let shard = &shared.shards[shard_idx as usize];
    shard
        .breaker
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .on_success();
    taxorec_telemetry::counter(&format!("router.shard.{shard_idx}.requests")).inc(1);
}

fn shard_failure(shared: &RouterShared, shard_idx: u32) {
    let shard = &shared.shards[shard_idx as usize];
    let tripped = shard
        .breaker
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .on_failure(Instant::now());
    taxorec_telemetry::counter(&format!("router.shard.{shard_idx}.requests")).inc(1);
    taxorec_telemetry::counter(&format!("router.shard.{shard_idx}.errors")).inc(1);
    if tripped {
        taxorec_telemetry::counter("router.breaker.opened").inc(1);
        taxorec_telemetry::sink::warn(&format!(
            "shard {shard_idx} breaker opened after repeated transport failures"
        ));
    }
}

/// The upstream request bytes for one proxied call: the original
/// target, the router's trace id (so shard spans join this trace), and
/// `Connection: close` framing.
fn upstream_request(target: &str, trace_id: u64) -> String {
    format!(
        "GET {target} HTTP/1.1\r\nHost: shard\r\nx-taxorec-trace: {trace_id:016x}\r\nConnection: close\r\n\r\n"
    )
}

/// One upstream attempt: connect (with bounded decorrelated-jitter
/// retries on connection-refused — the signature of a shard restarting
/// mid-reload), send, read to EOF, parse. Any other transport error
/// returns immediately so the caller can fail over.
fn attempt(
    addr: SocketAddr,
    request: &str,
    connect_timeout: Duration,
    deadline: Instant,
    retry: RetryPolicy,
    seed: u64,
) -> std::io::Result<(u16, String)> {
    let mut jitter = DecorrelatedJitter::new(retry, seed);
    let mut attempts = 0usize;
    let mut stream = loop {
        attempts += 1;
        match TcpStream::connect_timeout(&addr, connect_timeout) {
            Ok(s) => break s,
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionRefused
                    && attempts < retry.max_attempts.max(1)
                    && Instant::now() < deadline =>
            {
                // Refused means no listener *right now* — a shard
                // restarting. These reads are idempotent, so retry on
                // the jittered schedule instead of failing over and
                // abandoning the owner's warm cache.
                taxorec_telemetry::counter("router.connect.refused_retry").inc(1);
                std::thread::sleep(jitter.next_backoff());
            }
            Err(e) => return Err(e),
        }
    };
    let now = Instant::now();
    let budget = deadline
        .checked_duration_since(now)
        .unwrap_or(Duration::from_millis(1))
        .max(Duration::from_millis(1));
    stream.set_read_timeout(Some(budget))?;
    stream.set_write_timeout(Some(budget))?;
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::with_capacity(1024);
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parses a `Connection: close` HTTP/1.1 response into (status, body).
fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| std::io::Error::other("upstream response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("upstream response missing header terminator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::other(format!("malformed upstream status line {status_line:?}"))
        })?;
    Ok((status, body.to_string()))
}

/// Background prober: polls each shard's `/healthz` every
/// `probe_interval`, refreshing the routing cache (health state, shard
/// identity, checkpoint fingerprint) and the `router.shard.<i>.up`
/// gauges. Routing decisions read this cache, so probe latency never
/// lands on the request path.
fn prober_loop(shared: &RouterShared) {
    loop {
        for (i, shard) in shared.shards.iter().enumerate() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let state = match probe_shard(shard.addr, shared.opts.connect_timeout) {
                Ok((state, meta)) => {
                    *shard.meta.lock().unwrap_or_else(|e| e.into_inner()) = meta;
                    state
                }
                Err(_) => SHARD_DOWN,
            };
            let prev = shard.health.swap(state, Ordering::SeqCst);
            let up = (state == SHARD_READY || state == SHARD_DEGRADED) as u8;
            taxorec_telemetry::gauge(&format!("router.shard.{i}.up")).set(up as f64);
            if prev != state && prev != SHARD_UNKNOWN {
                taxorec_telemetry::sink::info(&format!(
                    "shard {i} {} -> {}",
                    shard_state_label(prev),
                    shard_state_label(state)
                ));
            }
        }
        // Sleep in short slices so shutdown is prompt.
        let mut remaining = shared.opts.probe_interval;
        while remaining > Duration::ZERO {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let slice = remaining.min(POLL_INTERVAL * 2);
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// One `/healthz` probe: fetch, parse `"status"`, scrape the shard
/// section ([`ShardMeta`]).
fn probe_shard(addr: SocketAddr, connect_timeout: Duration) -> std::io::Result<(u8, ShardMeta)> {
    let deadline = Instant::now() + connect_timeout * 4;
    let (status, body) = attempt(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: shard\r\nConnection: close\r\n\r\n",
        connect_timeout,
        deadline,
        RetryPolicy::none(),
        0,
    )?;
    if status != 200 {
        return Err(std::io::Error::other(format!("healthz answered {status}")));
    }
    let state = match json_str_field(&body, "status").as_deref() {
        Some("ready") => SHARD_READY,
        Some("degraded") => SHARD_DEGRADED,
        Some("draining") => SHARD_DRAINING,
        _ => SHARD_DOWN,
    };
    let meta = ShardMeta {
        id: json_str_field(&body, "id"),
        checkpoint: match (
            json_u64_field(&body, "version"),
            json_u64_field(&body, "crc"),
            json_u64_field(&body, "bytes"),
        ) {
            (Some(v), Some(c), Some(b)) => Some((v, c, b)),
            _ => None,
        },
    };
    Ok((state, meta))
}

/// First `"name":"value"` string field in a flat JSON scan. Good
/// enough for the `/healthz` documents this router itself defines.
fn json_str_field(body: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":\"");
    let start = body.find(&key)? + key.len();
    let rest = &body[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// First `"name":123` numeric field in a flat JSON scan.
fn json_u64_field(body: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let start = body.find(&key)? + key.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The router's aggregate `/healthz`: its own status (`ready` when the
/// full fleet is routable, `degraded` when only part of it is,
/// `draining` on shutdown) plus each shard's probed state, breaker,
/// identity, and checkpoint fingerprint.
fn fleet_healthz_json(shared: &RouterShared) -> String {
    let mut up = 0usize;
    let mut body = String::with_capacity(256);
    let mut shards_json = String::with_capacity(128 * shared.shards.len());
    shards_json.push('[');
    for (i, shard) in shared.shards.iter().enumerate() {
        if i > 0 {
            shards_json.push(',');
        }
        let state = shard.health.load(Ordering::SeqCst);
        if state != SHARD_DOWN && state != SHARD_DRAINING {
            up += 1;
        }
        let meta = shard.meta.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let breaker = shard
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .state_label();
        shards_json.push_str("{\"shard\":");
        shards_json.push_str(&i.to_string());
        shards_json.push_str(",\"addr\":");
        push_str_escaped(&mut shards_json, &shard.addr.to_string());
        shards_json.push_str(",\"state\":\"");
        shards_json.push_str(shard_state_label(state));
        shards_json.push_str("\",\"breaker\":\"");
        shards_json.push_str(breaker);
        shards_json.push_str("\",\"id\":");
        match &meta.id {
            Some(id) => push_str_escaped(&mut shards_json, id),
            None => shards_json.push_str("null"),
        }
        shards_json.push_str(",\"checkpoint\":");
        match meta.checkpoint {
            Some((v, c, b)) => {
                shards_json.push_str(&format!("{{\"version\":{v},\"crc\":{c},\"bytes\":{b}}}"))
            }
            None => shards_json.push_str("null"),
        }
        shards_json.push('}');
    }
    shards_json.push(']');
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else if up == shared.shards.len() {
        "ready"
    } else {
        "degraded"
    };
    body.push_str("{\"status\":\"");
    body.push_str(status);
    body.push_str("\",\"role\":\"router\",\"up\":");
    body.push_str(&up.to_string());
    body.push_str(",\"total\":");
    body.push_str(&shared.shards.len().to_string());
    body.push_str(",\"shards\":");
    body.push_str(&shards_json);
    body.push('}');
    body
}

/// Fetches every reachable shard's `/metrics` and merges them into one
/// exposition via [`merge_expositions`]. Unreachable shards contribute
/// a comment line instead of failing the scrape.
fn scrape_shard_metrics(shared: &RouterShared) -> String {
    let mut scraped = Vec::with_capacity(shared.shards.len());
    let mut unreachable = Vec::new();
    for (i, shard) in shared.shards.iter().enumerate() {
        let deadline = Instant::now() + shared.opts.connect_timeout * 4;
        match attempt(
            shard.addr,
            "GET /metrics HTTP/1.1\r\nHost: shard\r\nConnection: close\r\n\r\n",
            shared.opts.connect_timeout,
            deadline,
            RetryPolicy::none(),
            0,
        ) {
            Ok((200, text)) => scraped.push((i.to_string(), text)),
            _ => unreachable.push(i),
        }
    }
    let mut out = String::new();
    for i in unreachable {
        out.push_str(&format!("# shard {i} unreachable\n"));
    }
    out.push_str(&merge_expositions(&scraped));
    out
}

/// Merges Prometheus text expositions from several shards into one:
/// every sample line gains a `shard="<label>"` label, and `# HELP` /
/// `# TYPE` comments are emitted once per metric family with all
/// shards' samples grouped beneath them (scrape-order of first
/// appearance). Pure, so the grouping and label-injection invariants
/// are unit-testable without sockets.
pub fn merge_expositions(shards: &[(String, String)]) -> String {
    // family name -> (comment lines, sample lines), in first-seen order.
    let mut order: Vec<String> = Vec::new();
    let mut comments: Vec<Vec<String>> = Vec::new();
    let mut samples: Vec<Vec<String>> = Vec::new();
    let mut index = std::collections::HashMap::new();
    let mut family_names = std::collections::HashSet::new();

    // First pass: learn family names from TYPE/HELP comments, so
    // histogram series (`_bucket`/`_sum`/`_count`) can be grouped under
    // their family.
    for (_, text) in shards {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.split_whitespace();
                let kw = parts.next().unwrap_or("");
                if kw == "TYPE" || kw == "HELP" {
                    if let Some(name) = parts.next() {
                        family_names.insert(name.to_string());
                    }
                }
            }
        }
    }
    let family_of = |sample_name: &str| -> String {
        if family_names.contains(sample_name) {
            return sample_name.to_string();
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = sample_name.strip_suffix(suffix) {
                if family_names.contains(stem) {
                    return stem.to_string();
                }
            }
        }
        sample_name.to_string()
    };
    let mut slot_for = |fam: String,
                        order: &mut Vec<String>,
                        comments: &mut Vec<Vec<String>>,
                        samples: &mut Vec<Vec<String>>|
     -> usize {
        *index.entry(fam.clone()).or_insert_with(|| {
            order.push(fam);
            comments.push(Vec::new());
            samples.push(Vec::new());
            order.len() - 1
        })
    };

    for (label, text) in shards {
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.split_whitespace();
                let kw = parts.next().unwrap_or("");
                let name = parts.next().unwrap_or("");
                if kw != "TYPE" && kw != "HELP" {
                    continue;
                }
                let slot = slot_for(name.to_string(), &mut order, &mut comments, &mut samples);
                if !comments[slot].iter().any(|c| c == line) {
                    comments[slot].push(line.to_string());
                }
            } else {
                let name_end = line.find(['{', ' ']).unwrap_or(line.len());
                let name = &line[..name_end];
                let injected = if line.as_bytes().get(name_end) == Some(&b'{') {
                    format!("{name}{{shard=\"{label}\",{}", &line[name_end + 1..])
                } else {
                    format!("{name}{{shard=\"{label}\"}}{}", &line[name_end..])
                };
                let slot = slot_for(family_of(name), &mut order, &mut comments, &mut samples);
                samples[slot].push(injected);
            }
        }
    }

    let mut out = String::new();
    for (slot, _fam) in order.iter().enumerate() {
        for c in &comments[slot] {
            out.push_str(c);
            out.push('\n');
        }
        for s in &samples[slot] {
            out.push_str(s);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_injects_shard_labels_and_groups_families() {
        let a = "# HELP reqs Requests.\n# TYPE reqs counter\nreqs 3\n".to_string();
        let b = "# HELP reqs Requests.\n# TYPE reqs counter\nreqs 5\n".to_string();
        let merged = merge_expositions(&[("0".to_string(), a), ("1".to_string(), b)]);
        let lines: Vec<&str> = merged.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# HELP reqs Requests.",
                "# TYPE reqs counter",
                "reqs{shard=\"0\"} 3",
                "reqs{shard=\"1\"} 5",
            ]
        );
    }

    #[test]
    fn merge_prepends_shard_to_existing_labels() {
        let a =
            "# TYPE lat histogram\nlat_bucket{le=\"1\"} 2\nlat_sum 4\nlat_count 2\n".to_string();
        let merged = merge_expositions(&[("3".to_string(), a)]);
        assert!(
            merged.contains("lat_bucket{shard=\"3\",le=\"1\"} 2"),
            "{merged}"
        );
        assert!(merged.contains("lat_sum{shard=\"3\"} 4"), "{merged}");
        // All three series grouped under the single TYPE comment.
        let type_pos = merged.find("# TYPE lat").unwrap();
        let bucket_pos = merged.find("lat_bucket").unwrap();
        assert!(type_pos < bucket_pos);
        assert_eq!(merged.matches("# TYPE lat").count(), 1);
    }

    #[test]
    fn merge_groups_interleaved_families_from_many_shards() {
        let a = "# TYPE x counter\nx 1\n# TYPE y counter\ny 2\n".to_string();
        let b = "# TYPE y counter\ny 7\n# TYPE x counter\nx 9\n".to_string();
        let merged = merge_expositions(&[("0".to_string(), a), ("1".to_string(), b)]);
        // Families stay contiguous: every x sample before any y sample
        // (x was seen first).
        let x1 = merged.find("x{shard=\"1\"} 9").unwrap();
        let y0 = merged.find("y{shard=\"0\"} 2").unwrap();
        assert!(x1 < y0, "{merged}");
        assert_eq!(merged.matches("# TYPE x counter").count(), 1);
        assert_eq!(merged.matches("# TYPE y counter").count(), 1);
    }

    #[test]
    fn retry_after_derives_from_breaker_remaining_open() {
        // Deterministic injected clock: every breaker transition and
        // every remaining-open read happens at an instant we choose.
        let t0 = Instant::now();
        let mut a = Breaker::new(1, Duration::from_millis(2300));
        let mut b = Breaker::new(1, Duration::from_millis(4500));
        assert!(a.on_failure(t0), "a trips open");
        assert!(b.on_failure(t0), "b trips open");
        let at = |now: Instant| retry_after_secs([a.remaining_open(now), b.remaining_open(now)]);
        // Both open: the minimum remaining interval (2.3 s) rounds up.
        assert_eq!(at(t0), 3);
        // 1.3 s into the cooldown: 1.0 s left on the nearer breaker.
        assert_eq!(at(t0 + Duration::from_millis(1300)), 1);
        // 2.0 s in: 0.3 s left still advertises the 1-second floor.
        assert_eq!(at(t0 + Duration::from_millis(2000)), 1);
        // Nearer cooldown elapsed: a half-open probe can go through now.
        assert_eq!(at(t0 + Duration::from_millis(2300)), 1);
        // A closed breaker in the fleet floors the wait immediately.
        let closed = Breaker::default();
        assert_eq!(
            retry_after_secs([b.remaining_open(t0), closed.remaining_open(t0)]),
            1
        );
        // No breakers at all (degenerate) still answers something sane.
        assert_eq!(retry_after_secs([]), 1);
    }

    #[test]
    fn parse_response_extracts_status_and_body() {
        let raw =
            b"HTTP/1.1 404 Not Found\r\ncontent-type: application/json\r\n\r\n{\"error\":\"x\"}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "{\"error\":\"x\"}");
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn json_field_scans() {
        let body = "{\"status\":\"ready\",\"shard\":{\"id\":\"s0\",\"checkpoint\":{\"version\":1,\"crc\":42,\"bytes\":512}}}";
        assert_eq!(json_str_field(body, "status").as_deref(), Some("ready"));
        assert_eq!(json_str_field(body, "id").as_deref(), Some("s0"));
        assert_eq!(json_u64_field(body, "crc"), Some(42));
        assert_eq!(json_u64_field(body, "bytes"), Some(512));
        assert_eq!(json_str_field(body, "missing"), None);
    }
}
