//! A bounded LRU map for response caching: `HashMap` index over an arena
//! of doubly-linked slots, so `get`/`put` are O(1) and eviction is exact
//! LRU (not sampled). Zero dependencies; the serving layer wraps it in a
//! `Mutex` and counts hits/misses through `taxorec-telemetry`.

use std::collections::HashMap;
use std::hash::Hash;

const NONE: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (`0` disables
    /// caching — every `get` misses and `put` is a no-op).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        self.detach(i);
        self.push_front(i);
        Some(&self.slots[i].value)
    }

    /// Inserts (or refreshes) `key → value`; returns the evicted
    /// least-recently-used entry when the cache was full.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.detach(i);
            self.push_front(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE);
            self.detach(lru);
            let slot = &mut self.slots[lru];
            self.map.remove(&slot.key);
            let old_key = std::mem::replace(&mut slot.key, key.clone());
            let old_value = std::mem::replace(&mut slot.value, value);
            evicted = Some((old_key, old_value));
            self.map.insert(key, lru);
            self.push_front(lru);
            return evicted;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.free.clear();
        self.free.extend(0..self.slots.len());
        self.head = NONE;
        self.tail = NONE;
    }

    /// Keys from most- to least-recently used (test/debug helper).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NONE {
            out.push(self.slots[cur].key.clone());
            cur = self.slots[cur].next;
        }
        out
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NONE {
            self.slots[prev].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NONE {
            self.slots[next].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        self.slots[i].prev = NONE;
        self.slots[i].next = NONE;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NONE;
        self.slots[i].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.put("a", 1).is_none());
        assert!(c.put("b", 2).is_none());
        // Touch "a" so "b" becomes LRU.
        assert_eq!(c.get(&"a"), Some(&1));
        let evicted = c.put("c", 3).expect("full cache evicts");
        assert_eq!(evicted, ("b", 2));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_existing_key() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // refresh: "a" is now MRU, value updated
        assert_eq!(c.keys_mru(), vec!["a", "b"]);
        assert_eq!(c.put("c", 3).unwrap().0, "b");
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        assert!(c.put("a", 1).is_none());
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_resets_and_reuses_slots() {
        let mut c = LruCache::new(3);
        for (i, k) in ["a", "b", "c"].into_iter().enumerate() {
            c.put(k, i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
        c.put("d", 9);
        assert_eq!(c.get(&"d"), Some(&9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn single_entry_cache_behaves() {
        let mut c = LruCache::new(1);
        c.put(1u32, "x");
        assert_eq!(c.put(2, "y").unwrap(), (1, "x"));
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn long_churn_keeps_map_and_list_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.put(i % 13, i);
            assert!(c.len() <= 8);
            let mru = c.keys_mru();
            assert_eq!(mru.len(), c.len());
            assert_eq!(mru[0], i % 13);
        }
    }
}
