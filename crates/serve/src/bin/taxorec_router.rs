//! `taxorec-router` — the sharded serving front end (DESIGN.md §16).
//!
//! ```text
//! taxorec-router --shards HOST:PORT,HOST:PORT,… [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Partitions users across the shard fleet by consistent hashing,
//! proxies `/recommend` and `/explain` to the owning shard with
//! health-aware failover (circuit breakers, jittered retries, hedged
//! requests), and aggregates fleet state on `/healthz`, `/metrics`,
//! and `/shards/metrics`. Runs until stdin closes or SIGTERM/SIGINT
//! arrives, then drains gracefully.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taxorec_serve::RouterOptions;

const USAGE: &str = "\
taxorec-router — consistent-hash router over taxorec-serve shards

USAGE:
  taxorec-router --shards HOST:PORT,HOST:PORT,… [--addr HOST:PORT] [--workers N]
      --shards     comma-separated shard addresses (required); shard i is
                   the i-th entry, matching each worker's --shard-id
      --addr       bind address (default 127.0.0.1:7979; port 0 = ephemeral)
      --workers    front-end worker threads (default 4)

  Endpoints: /recommend?user=U&k=K   proxied to the owning shard, with
                                     failover + hedging; the answering
                                     shard is echoed in x-taxorec-shard
             /explain?user=U&item=V  proxied likewise
             /healthz                aggregate fleet view
             /metrics                router RED metrics (Prometheus)
             /shards/metrics         merged shard expositions, shard=\"i\"

  Tuning (env): TAXOREC_ROUTER_PROBE_MS, TAXOREC_ROUTER_HEDGE_MS,
  TAXOREC_ROUTER_DEADLINE_MS, TAXOREC_ROUTER_CONNECT_MS,
  TAXOREC_ROUTER_BREAKER_FAILURES, TAXOREC_ROUTER_BREAKER_COOLDOWN_MS.

  Runs until stdin is closed (Ctrl-D / EOF) or SIGTERM/SIGINT arrives.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("taxorec-router: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{name} requires a value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let shards_raw =
        flag(args, "--shards")?.ok_or_else(|| format!("--shards is required\n\n{USAGE}"))?;
    let shards: Vec<SocketAddr> = shards_raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("--shards entry {s:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if shards.is_empty() {
        return Err("--shards needs at least one address".into());
    }
    let addr = flag(args, "--addr")?.unwrap_or("127.0.0.1:7979");
    let mut opts = RouterOptions::from_env();
    if let Some(w) = flag(args, "--workers")? {
        opts.n_workers = w
            .parse()
            .map_err(|_| format!("--workers {w:?} is not an integer"))?;
    }
    // Arm the SIGTERM/SIGINT latch before the address is announced: an
    // orchestrator may signal the instant it sees the listening line,
    // and the default disposition would be sudden death, not a drain.
    taxorec_serve::signal::install();
    let handle = taxorec_serve::route_with(shards.clone(), addr, opts)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "routing {} shard(s): {}",
        shards.len(),
        shards
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("listening on http://{}", handle.local_addr());
    println!(
        "try: curl 'http://{}/recommend?user=0&k=10'",
        handle.local_addr()
    );
    println!("close stdin (Ctrl-D) or send SIGTERM to shut down");
    wait_for_exit();
    if taxorec_serve::signal::triggered() {
        println!("signal received; draining…");
        handle.set_draining();
    } else {
        println!("stdin closed; shutting down…");
    }
    handle.shutdown();
    taxorec_telemetry::sink::flush();
    println!("bye");
    Ok(())
}

/// Blocks until stdin reaches EOF or a SIGTERM/SIGINT arrives (same
/// structure as `taxorec-serve serve`).
fn wait_for_exit() {
    taxorec_serve::signal::install();
    let stdin_done = Arc::new(AtomicBool::new(false));
    {
        let stdin_done = Arc::clone(&stdin_done);
        std::thread::spawn(move || {
            let mut sink = String::new();
            while std::io::stdin()
                .read_line(&mut sink)
                .map(|n| n > 0)
                .unwrap_or(false)
            {
                sink.clear();
            }
            stdin_done.store(true, Ordering::SeqCst);
        });
    }
    while !taxorec_serve::signal::triggered() && !stdin_done.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
}
