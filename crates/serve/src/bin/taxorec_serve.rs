//! `taxorec-serve` — train, inspect, and serve `.taxo` model artifacts.
//!
//! ```text
//! taxorec-serve train-demo <out.taxo> [--preset ciao|amazon-cd|amazon-book|yelp]
//!                                     [--scale tiny|bench|full] [--epochs N]
//! taxorec-serve inspect    <model.taxo>
//! taxorec-serve serve      <model.taxo> [--addr HOST:PORT] [--workers N]
//! ```
//!
//! `serve` binds the address (default `127.0.0.1:7878`; port `0` picks an
//! ephemeral port, printed on startup) and answers `GET /recommend`,
//! `/explain`, `/healthz`, and `/metrics` until stdin reaches EOF, then
//! shuts down gracefully.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use taxorec_core::{FitControl, TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Scale, Split};
use taxorec_resilience::RetryPolicy;
use taxorec_serve::{Checkpoint, IndexConfig, RetrievalMode, TrainCheckpoint};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train-demo") => train_demo(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("serve") => run_server(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("taxorec-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
taxorec-serve — train, inspect, and serve .taxo model artifacts

USAGE:
  taxorec-serve train-demo <out.taxo> [--preset P] [--scale S] [--epochs N]
                           [--checkpoint CK] [--checkpoint-every N] [--resume CK]
                           [--follow] [--index]
      Train TaxoRec on a synthetic dataset and save a serving artifact.
      P: ciao | amazon-cd | amazon-book | yelp   (default ciao)
      S: tiny | bench | full                     (default tiny)
      --index                build a hierarchical retrieval index over the
                             item embeddings and embed it in the artifact
                             (enables `serve --retrieval beam[:B]`)
      --checkpoint CK        write a resumable training checkpoint to CK
      --checkpoint-every N   every N completed epochs (default 1)
      --resume CK            continue bit-identically from CK (missing file
                             = fresh start); config flags must match
      --follow               print a per-epoch progress line with the
                             aggregation/scoring/update stage breakdown

  taxorec-serve inspect <model.taxo>
      Print the artifact's model card (dims, users, items, tags, taxonomy).

  taxorec-serve serve <model.taxo> [--addr HOST:PORT] [--workers N]
                      [--retrieval exact|beam|beam:B] [--shard-id ID] [--ingest]
      Serve the model over HTTP (default 127.0.0.1:7878, 4 workers).
      --retrieval            candidate generation: `exact` (default) scores
                             the whole catalogue; `beam[:B]` routes through
                             the artifact's retrieval index (`beam` alone
                             takes the index's default width)
      --shard-id ID          identity reported in /healthz (\"shard\":{…}),
                             used by taxorec-router fleet aggregation
      --ingest               accept POST /ingest interaction batches and fold
                             them into the model between serving ticks
                             (TAXOREC_INGEST_* tunes tick/journal/drift;
                             TAXOREC_INGEST_CHECKPOINT persists each tick)
      Endpoints: /recommend?user=U&k=K  /explain?user=U&item=V
                 POST /ingest  /healthz  /metrics (Prometheus)  /metrics.json
                 /debug/flight  /admin/drain  /admin/reload?path=P
                 (TAXOREC_SERVE_ADMIN=0 disables the admin pair)
      Runs until stdin is closed (Ctrl-D / EOF) or SIGTERM/SIGINT arrives;
      a signal drains gracefully (TAXOREC_SERVE_DRAIN_MS grace, default
      300 ms) so a fronting router can route around this shard first.
      Set TAXOREC_TRACE=<file> to export sampled request traces as Chrome
      trace-event JSON on shutdown.
";

/// Boolean `--flag`s (no value); `positional` must not skip an argument
/// after these.
const BOOL_FLAGS: &[&str] = &["--follow", "--index", "--ingest"];

/// `--flag value` lookup over the raw argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{name} requires a value")),
    }
}

fn positional<'a>(args: &'a [String], idx: usize, what: &str) -> Result<&'a str, String> {
    let mut seen = 0;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            // Boolean flags stand alone; value flags consume the next arg.
            i += if BOOL_FLAGS.contains(&args[i].as_str()) {
                1
            } else {
                2
            };
            continue;
        }
        if seen == idx {
            return Ok(&args[i]);
        }
        seen += 1;
        i += 1;
    }
    Err(format!("missing required argument <{what}>\n\n{USAGE}"))
}

fn train_demo(args: &[String]) -> Result<(), String> {
    let out = positional(args, 0, "out.taxo")?;
    let preset = match flag(args, "--preset")?.unwrap_or("ciao") {
        "ciao" => Preset::Ciao,
        "amazon-cd" => Preset::AmazonCd,
        "amazon-book" => Preset::AmazonBook,
        "yelp" => Preset::Yelp,
        other => return Err(format!("unknown preset {other:?}")),
    };
    let scale = match flag(args, "--scale")?.unwrap_or("tiny") {
        "tiny" => Scale::Tiny,
        "bench" => Scale::Bench,
        "full" => Scale::Full,
        other => return Err(format!("unknown scale {other:?}")),
    };
    let dataset = generate_preset(preset, scale);
    let split = Split::standard(&dataset);
    let mut config = TaxoRecConfig::fast_test();
    if let Some(e) = flag(args, "--epochs")? {
        config.epochs = e
            .parse()
            .map_err(|_| format!("--epochs {e:?} is not an integer"))?;
    }
    let ckpt_path = flag(args, "--checkpoint")?.map(str::to_string);
    let ckpt_every: usize = match flag(args, "--checkpoint-every")? {
        None => 1,
        Some(n) => n
            .parse()
            .map_err(|_| format!("--checkpoint-every {n:?} is not an integer"))?,
    };
    let resume_path = flag(args, "--resume")?;

    let mut ctl = FitControl::default();
    if let Some(path) = resume_path {
        if std::path::Path::new(path).exists() {
            let state = TrainCheckpoint::load_file(path)
                .map_err(|e| format!("--resume {path}: {e}"))?
                .state;
            println!(
                "resuming from {path}: epoch {}/{} done, lr_scale {}",
                state.next_epoch, state.config.epochs, state.lr_scale
            );
            if state.config != config {
                return Err(format!(
                    "--resume {path} was trained with a different configuration \
                     (pass the same --epochs and dataset flags)"
                ));
            }
            ctl.resume = Some(state);
        } else {
            println!("--resume {path}: no checkpoint yet, starting fresh");
        }
    }
    if let Some(path) = &ckpt_path {
        let path = path.clone();
        ctl.checkpoint_every = ckpt_every.max(1);
        // Each save gets a small retry budget: a transient IO failure
        // (or an injected io@checkpoint.save fault) costs a retry, not
        // the checkpoint.
        ctl.checkpoint_sink = Some(Box::new(move |state| {
            RetryPolicy::default()
                .run("checkpoint.save", |_| {
                    TrainCheckpoint::new(state.clone()).save(&path)
                })
                .map_err(|e| e.to_string())
        }));
    }
    if args.iter().any(|a| a == "--follow") {
        ctl.on_epoch = Some(Box::new(|r| {
            let total = (r.aggregation_secs + r.scoring_secs + r.update_secs).max(1e-12);
            println!(
                "epoch {:>3}  loss {:.5}  grad {:.4}  {:.2}s \
                 (agg {:.0}% / score {:.0}% / update {:.0}%)",
                r.epoch,
                r.mean_loss,
                r.mean_grad_norm,
                r.duration_secs,
                100.0 * r.aggregation_secs / total,
                100.0 * r.scoring_secs / total,
                100.0 * r.update_secs / total,
            );
        }));
    }
    // Testing hook: slow the epoch loop down so an external kill lands
    // mid-run deterministically (see the crash-resume integration test).
    if let Ok(ms) = std::env::var("TAXOREC_EPOCH_SLEEP_MS") {
        let ms: u64 = ms
            .trim()
            .parse()
            .map_err(|_| format!("TAXOREC_EPOCH_SLEEP_MS={ms:?} is not an integer"))?;
        ctl.epoch_throttle = Duration::from_millis(ms);
    }

    println!(
        "training TaxoRec on synthetic {} ({} users, {} items, {} tags), {} epochs…",
        dataset.name, dataset.n_users, dataset.n_items, dataset.n_tags, config.epochs
    );
    let mut model = TaxoRec::new(config);
    let report = model.fit_controlled(&dataset, &split, ctl);
    if report.start_epoch > 0 {
        println!(
            "resumed at epoch {}, ran {} more",
            report.start_epoch, report.epochs_run
        );
    }
    if report.rollbacks > 0 {
        println!(
            "recovered from {} diverged epoch(s); final lr_scale {}",
            report.rollbacks, report.final_lr_scale
        );
    }
    if report.checkpoint_failures > 0 {
        println!(
            "warning: {} checkpoint write(s) failed ({} succeeded)",
            report.checkpoint_failures, report.checkpoints_written
        );
    }
    if report.gave_up {
        return Err("training diverged beyond the rollback budget; artifact not saved".into());
    }
    let mut ckpt = Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train);
    if args.iter().any(|a| a == "--index") {
        ckpt = ckpt
            .with_retrieval_index(&IndexConfig::default())
            .map_err(|e| format!("--index: {e}"))?;
        let parts = ckpt.index.as_ref().expect("just built");
        println!(
            "retrieval index: {} nodes, {} leaves, depth {}, default beam {}",
            parts.n_nodes(),
            parts.n_leaves(),
            parts.depth(),
            parts.config.beam
        );
    }
    ckpt.save(out).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("saved {out} ({bytes} bytes)");
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0, "model.taxo")?;
    let ckpt = Checkpoint::load_file(path).map_err(|e| e.to_string())?;
    let s = &ckpt.state;
    println!("artifact      {path}");
    println!("model         {}", s.name);
    println!("users         {}", s.n_users());
    println!("items         {}", s.n_items());
    println!(
        "tags          {} (channel active: {})",
        s.n_tags(),
        s.tags_active
    );
    println!(
        "dims          interaction {} / tag {} (Lorentz, +1 time-like coord)",
        s.config.dim_ir, s.config.dim_tag
    );
    match &s.taxonomy {
        Some(t) => {
            let depth = t.nodes().iter().map(|n| n.level).max().unwrap_or(0);
            println!("taxonomy      {} nodes, depth {depth}", t.nodes().len());
        }
        None => println!("taxonomy      (none)"),
    }
    println!(
        "serving ctx   {} tag names, {} item tag lists, {} seen-item lists",
        ckpt.tag_names.len(),
        ckpt.item_tags.len(),
        ckpt.seen_items.len()
    );
    match &ckpt.index {
        Some(parts) => println!(
            "retrieval     index: {} nodes, {} leaves, depth {}, default beam {}",
            parts.n_nodes(),
            parts.n_leaves(),
            parts.depth(),
            parts.config.beam
        ),
        None => println!("retrieval     (no index — exhaustive scoring only)"),
    }
    match ckpt.journal_cursor {
        Some(cursor) => println!("journal       cursor {cursor} (streamed generation)"),
        None => println!("journal       (batch artifact — no streamed interactions)"),
    }
    Ok(())
}

fn run_server(args: &[String]) -> Result<(), String> {
    // Arm the SIGTERM/SIGINT latch before the address is announced: an
    // orchestrator may signal the instant it sees the listening line,
    // and the default disposition would be sudden death, not a drain.
    taxorec_serve::signal::install();
    let path = positional(args, 0, "model.taxo")?;
    let addr = flag(args, "--addr")?.unwrap_or("127.0.0.1:7878");
    let workers: usize = match flag(args, "--workers")? {
        None => 4,
        Some(w) => w
            .parse()
            .map_err(|_| format!("--workers {w:?} is not an integer"))?,
    };
    let retrieval = match flag(args, "--retrieval")? {
        None => RetrievalMode::Exact,
        Some(raw) => RetrievalMode::parse(raw).map_err(|e| format!("--retrieval: {e}"))?,
    };
    let mut opts = taxorec_serve::ServeOptions::from_env();
    opts.n_workers = workers;
    if let Some(id) = flag(args, "--shard-id")? {
        opts.shard_id = Some(id.to_string());
    }
    let ingest = args.iter().any(|a| a == "--ingest");
    let base = if ingest {
        Some(taxorec_serve::Checkpoint::load_file(path).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let model = match &base {
        Some(ckpt) => taxorec_serve::ServingModel::new(ckpt.clone()),
        None => taxorec_serve::load(path),
    }
    .and_then(|m| m.with_retrieval(retrieval))
    .map_err(|e| e.to_string())?;
    println!(
        "loaded {path}: model {:?}, {} users, {} items, retrieval {}{}",
        model.name(),
        model.n_users(),
        model.n_items(),
        model.retrieval_mode().label(),
        if ingest { ", ingestion on" } else { "" }
    );
    let handle = match base {
        Some(ckpt) => taxorec_serve::serve_online(Arc::new(model), ckpt, addr, opts),
        None => taxorec_serve::serve_with(Arc::new(model), addr, opts),
    }
    .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "listening on http://{} ({} workers)",
        handle.local_addr(),
        workers
    );
    println!(
        "try: curl 'http://{}/recommend?user=0&k=10'",
        handle.local_addr()
    );
    println!("close stdin (Ctrl-D) or send SIGTERM to shut down");
    wait_for_exit();
    if taxorec_serve::signal::triggered() {
        // Signal-driven stop is a *graceful drain*: advertise
        // `draining` on /healthz first, give a fronting router one
        // probe interval to route around this shard, then stop.
        println!("signal received; draining…");
        handle.set_draining();
        std::thread::sleep(drain_grace());
    } else {
        println!("stdin closed; shutting down…");
    }
    handle.shutdown();
    // Drain buffered observability before exiting: the trace export and
    // any file-backed JSONL sink only hit disk here on a short run.
    if let Some(path) = taxorec_telemetry::trace::flush() {
        println!("trace export written to {}", path.display());
    }
    taxorec_telemetry::sink::flush();
    println!("bye");
    Ok(())
}

/// Blocks until stdin reaches EOF *or* a SIGTERM/SIGINT arrives.
///
/// stdin is read on a helper thread — `read_line` on Linux restarts
/// after a handled signal, so the main thread polls the signal latch
/// instead of waiting inside the blocked read.
fn wait_for_exit() {
    taxorec_serve::signal::install();
    let stdin_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let stdin_done = Arc::clone(&stdin_done);
        std::thread::spawn(move || {
            let mut sink = String::new();
            while std::io::stdin()
                .read_line(&mut sink)
                .map(|n| n > 0)
                .unwrap_or(false)
            {
                sink.clear();
            }
            stdin_done.store(true, std::sync::atomic::Ordering::SeqCst);
        });
    }
    while !taxorec_serve::signal::triggered()
        && !stdin_done.load(std::sync::atomic::Ordering::SeqCst)
    {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// How long a signal-stopped shard advertises `draining` before it
/// actually shuts down (`TAXOREC_SERVE_DRAIN_MS`, default 300 ms —
/// comfortably above the router's default 200 ms probe interval).
fn drain_grace() -> Duration {
    let ms = std::env::var("TAXOREC_SERVE_DRAIN_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}
