//! Per-shard circuit breaker for the router (DESIGN.md §16).
//!
//! Classic three-state breaker, time injected by the caller so every
//! transition is deterministic under test:
//!
//! ```text
//!            failures ≥ threshold                cooldown elapsed
//!  Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//!    ▲                              ▲                               │
//!    │ success                      │ failure (any probe fails)     │
//!    └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! * **Closed** — traffic flows; consecutive failures are counted and
//!   any success resets the count.
//! * **Open** — the shard is presumed down; [`Breaker::allow`] refuses
//!   until the cooldown elapses, so a dead shard costs the router one
//!   connect timeout per cooldown instead of one per request.
//! * **HalfOpen** — one trial request is let through; success closes
//!   the breaker, failure reopens it for another cooldown.
//!
//! The router holds one breaker per shard behind a mutex; operations
//! are a few branches, so contention is irrelevant next to the network
//! work they gate.

use std::time::{Duration, Instant};

/// Consecutive failures that trip a closed breaker.
pub const DEFAULT_FAILURE_THRESHOLD: u32 = 3;
/// How long an open breaker refuses before probing (half-open).
pub const DEFAULT_COOLDOWN: Duration = Duration::from_millis(500);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// One shard's circuit breaker. Not internally synchronized — the
/// router wraps it in a `Mutex` alongside the rest of the shard state.
#[derive(Clone, Debug)]
pub struct Breaker {
    state: State,
    threshold: u32,
    cooldown: Duration,
}

impl Default for Breaker {
    fn default() -> Self {
        Self::new(DEFAULT_FAILURE_THRESHOLD, DEFAULT_COOLDOWN)
    }
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// failures and cooling down for `cooldown` once open.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            state: State::Closed { failures: 0 },
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// May a request be sent now? Open breakers whose cooldown has
    /// elapsed transition to half-open and admit exactly this caller
    /// as the trial probe.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed { .. } => true,
            State::HalfOpen => true,
            State::Open { until } => {
                if now >= until {
                    self.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful request: closes the breaker from any state.
    pub fn on_success(&mut self) {
        self.state = State::Closed { failures: 0 };
    }

    /// Record a failed request. Returns `true` if this failure tripped
    /// the breaker open (callers use it for one-shot telemetry).
    pub fn on_failure(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    self.state = State::Open {
                        until: now + self.cooldown,
                    };
                    true
                } else {
                    self.state = State::Closed { failures };
                    false
                }
            }
            // A failed half-open probe reopens for a fresh cooldown.
            State::HalfOpen => {
                self.state = State::Open {
                    until: now + self.cooldown,
                };
                true
            }
            State::Open { .. } => {
                self.state = State::Open {
                    until: now + self.cooldown,
                };
                false
            }
        }
    }

    /// `true` while the breaker refuses traffic (open, cooldown not
    /// yet elapsed *as of the last `allow` call*).
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. })
    }

    /// How much of the open cooldown is still left as of `now`:
    /// `Some(remaining)` while the breaker is open and refusing,
    /// `None` once the cooldown has elapsed or in any other state.
    /// The router derives `Retry-After` from this, so a 503 tells the
    /// client when a retry can actually succeed instead of a constant.
    pub fn remaining_open(&self, now: Instant) -> Option<Duration> {
        match self.state {
            State::Open { until } => until.checked_duration_since(now).filter(|d| !d.is_zero()),
            _ => None,
        }
    }

    /// State label for telemetry and `/healthz`.
    pub fn state_label(&self) -> &'static str {
        match self.state {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = Breaker::new(3, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert!(b.allow(t0), "still closed below threshold");
        assert!(b.on_failure(t0), "third failure trips");
        assert!(b.is_open());
        assert!(!b.allow(t0), "open refuses immediately");
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = Breaker::new(3, Duration::from_millis(100));
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert!(!b.is_open(), "count restarted after success");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = Breaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.on_failure(t0));
        assert!(!b.allow(t0 + Duration::from_millis(50)), "mid-cooldown");
        assert!(
            b.allow(t0 + Duration::from_millis(100)),
            "cooldown elapsed: half-open admits the probe"
        );
        assert_eq!(b.state_label(), "half-open");
        b.on_success();
        assert_eq!(b.state_label(), "closed");
        assert!(b.allow(t0 + Duration::from_millis(101)));
    }

    #[test]
    fn half_open_probe_failure_reopens_for_a_fresh_cooldown() {
        let mut b = Breaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        b.on_failure(t0);
        let probe_at = t0 + Duration::from_millis(100);
        assert!(b.allow(probe_at));
        assert!(b.on_failure(probe_at), "failed probe re-trips");
        assert!(!b.allow(probe_at + Duration::from_millis(99)));
        assert!(b.allow(probe_at + Duration::from_millis(100)));
    }

    #[test]
    fn remaining_open_counts_down_the_injected_clock() {
        let mut b = Breaker::new(1, Duration::from_millis(400));
        let t0 = Instant::now();
        assert_eq!(b.remaining_open(t0), None, "closed: nothing remaining");
        assert!(b.on_failure(t0), "tripped open");
        assert_eq!(b.remaining_open(t0), Some(Duration::from_millis(400)));
        assert_eq!(
            b.remaining_open(t0 + Duration::from_millis(150)),
            Some(Duration::from_millis(250)),
            "remaining interval tracks the injected clock"
        );
        assert_eq!(
            b.remaining_open(t0 + Duration::from_millis(400)),
            None,
            "cooldown elapsed: a probe may go through"
        );
        assert!(b.allow(t0 + Duration::from_millis(400)));
        assert_eq!(
            b.remaining_open(t0 + Duration::from_millis(400)),
            None,
            "half-open has no refusal interval"
        );
    }

    #[test]
    fn threshold_is_clamped_to_at_least_one() {
        let mut b = Breaker::new(0, Duration::from_millis(10));
        assert!(b.on_failure(Instant::now()), "0 behaves like 1");
    }
}
