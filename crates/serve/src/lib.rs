//! Model checkpointing and online serving for TaxoRec.
//!
//! This crate closes the loop from the paper's offline training to an
//! online recommender: a trained [`taxorec_core::TaxoRec`] — Lorentz
//! user/item/tag embeddings, the constructed tag taxonomy, and the
//! personalized tag weights `α_u` of Eq. 16 — is frozen into a
//! versioned, checksummed `.taxo` artifact, reloaded into an immutable
//! [`ServingModel`], and exposed over a std-only HTTP/1.1 server.
//!
//! Three layers, one guarantee:
//!
//! * [`checkpoint`] — the `.taxo` binary format: `TAXO` magic, format
//!   version, length-framed little-endian payload, CRC-32 trailer.
//!   Loading validates all of it and the model dimensions before any
//!   query runs; see [`CheckpointError`] for the failure taxonomy.
//! * [`model`] — [`ServingModel`]: heap-based partial top-K ranking
//!   with train-item exclusion, an LRU response cache, batched queries
//!   over `taxorec-parallel`, and taxonomy-grounded explanations.
//! * [`http`] — `taxorec-serve`, the `TcpListener`-based front end
//!   (`/recommend`, `/explain`, `/healthz`, `/metrics`), with warm
//!   checkpoint reload through [`ModelSlot`] (`/admin/reload`).
//!
//! On top of the single-process server sits the sharded tier
//! (DESIGN.md §16): [`ring`] partitions users across shard workers by
//! consistent hashing, [`router`] is the `taxorec-router` front end
//! (health-aware failover, per-shard circuit [`breaker`]s, hedged
//! requests, aggregated health/metrics), and [`signal`] latches
//! SIGTERM/SIGINT so shards drain gracefully under an orchestrator.
//!
//! The guarantee: scoring replays [`TaxoRec::scores_for_user`]
//! bit-for-bit, and the artifact stores every float via `to_le_bytes`,
//! so a reloaded checkpoint produces **identical** top-K lists to the
//! in-process model it was saved from — not merely close ones. The
//! integration tests assert exact equality for every user.
//!
//! [`TaxoRec::scores_for_user`]: taxorec_data::Recommender::scores_for_user
//!
//! ```no_run
//! use taxorec_core::{TaxoRec, TaxoRecConfig};
//! use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
//!
//! let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
//! let split = Split::standard(&dataset);
//! let mut model = TaxoRec::new(TaxoRecConfig::fast_test());
//! model.fit(&dataset, &split);
//!
//! // Freeze to disk…
//! let ckpt = taxorec_serve::Checkpoint::from_model(&model)
//!     .with_dataset(&dataset)
//!     .with_seen_items(&split.train);
//! ckpt.save("model.taxo").unwrap();
//!
//! // …and serve it back, bit-identically.
//! let serving = taxorec_serve::load("model.taxo").unwrap();
//! let top = serving.recommend(0, 10).unwrap();
//! println!("{top:?}");
//! ```

pub mod batch;
pub mod breaker;
pub mod checkpoint;
pub mod http;
pub mod lru;
pub mod model;
pub mod online;
pub mod ring;
pub mod router;
pub mod signal;
mod wire;

pub use batch::{BatchJob, BatchOptions, Batcher};
pub use breaker::Breaker;
pub use checkpoint::{
    load, save, ArtifactInfo, Checkpoint, CheckpointError, TrainCheckpoint, FLAG_JOURNAL_CURSOR,
    FLAG_RETRIEVAL_INDEX, FLAG_TRAIN_STATE, FORMAT_VERSION, MAGIC,
};
pub use http::{serve, serve_online, serve_with, Health, ServeOptions, ServerHandle};
pub use lru::LruCache;
pub use model::{
    Explanation, ModelSlot, Ranking, ServeError, ServingModel, TagAffinity, SERVE_BLOCK,
};
pub use online::{
    fold_batch, parse_ingest_body, FoldReport, IngestInteraction, IngestOptions, Journal,
};
pub use ring::Ring;
pub use router::{route, route_with, RouterHandle, RouterOptions};
pub use taxorec_retrieval::{IndexConfig, RetrievalMode};
pub use wire::crc32;
