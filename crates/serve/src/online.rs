//! Streaming ingestion: the bounded interaction journal, the `/ingest`
//! body format, and the incremental-update loop that folds journaled
//! interactions into the serving model between ticks (DESIGN.md §17).
//!
//! ```text
//! POST /ingest ──▶ Journal (bounded) ──▶ updater thread, every tick:
//!                                          drain ≤ batch
//!                                          fold (incremental RSGD,
//!                                                tag attach, index patch)
//!                                          serialize → ArtifactInfo
//!                                          ModelSlot::swap  ─▶ serving
//! ```
//!
//! The updater owns the *master* [`Checkpoint`] and is the only thread
//! that mutates it; serving threads only ever see immutable
//! [`ServingModel`]s swapped in through the same [`ModelSlot`] path as
//! `/admin/reload`, so failover/chaos guarantees carry over unchanged
//! and every swap starts with a cold response cache (the old model's
//! cached rankings can never leak across model generations).
//!
//! Determinism: the fold is strictly per-interaction (see
//! `taxorec_core::incremental`), tag-name→id allocation is sequential
//! in journal order, taxonomy grafts and drift-triggered rebuilds fire
//! at fixed journal positions, and the retrieval index is patched
//! per-interaction — so replaying the same journal from the same base
//! checkpoint reproduces the artifact byte-for-byte, at any thread
//! count and any tick batching.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use taxorec_core::incremental::{apply_interactions, IncrementalConfig, Interaction};
use taxorec_retrieval::TaxoIndex;
use taxorec_taxonomy::{attach_tag, construct_taxonomy, ConstructConfig};

use crate::checkpoint::{item_embeddings, Checkpoint};

/// Tuning of the ingestion path. [`IngestOptions::from_env`] reads the
/// `TAXOREC_INGEST_*` family; [`Default`] ignores the environment and
/// leaves ingestion **disabled**.
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Accept `POST /ingest` and run the updater thread.
    /// Env: `TAXOREC_INGEST=1` (set by `taxorec-serve serve --ingest`).
    pub enabled: bool,
    /// Update-tick interval: how often the journal is drained and the
    /// model rebuilt + swapped. Env: `TAXOREC_INGEST_TICK_MS`.
    pub tick: Duration,
    /// Journal capacity; `POST /ingest` answers `503 + Retry-After`
    /// when full (backpressure, same contract as the connection queue).
    /// Env: `TAXOREC_INGEST_JOURNAL_CAP`.
    pub journal_cap: usize,
    /// Most interactions folded per tick; the rest stay journaled for
    /// the next tick. Env: `TAXOREC_INGEST_BATCH`.
    pub batch: usize,
    /// Riemannian step size of the incremental fold.
    /// Env: `TAXOREC_INGEST_LR`.
    pub lr: f64,
    /// Margin of the incremental triplet hinge.
    /// Env: `TAXOREC_INGEST_MARGIN`.
    pub margin: f64,
    /// Grafted-tag count that triggers a full Algorithm-1 taxonomy
    /// rebuild (and index rebuild) to reconcile accumulated drift.
    /// Env: `TAXOREC_INGEST_DRIFT_LIMIT`.
    pub drift_limit: u64,
    /// Hard cap on rows a single interaction may grow the model by
    /// (hostile/corrupt id guard). Env: `TAXOREC_INGEST_MAX_GROWTH`.
    pub max_growth: usize,
    /// Largest `POST /ingest` body accepted (bytes).
    /// Env: `TAXOREC_INGEST_MAX_BODY_BYTES`.
    pub max_body: usize,
    /// When set, every tick's artifact is persisted here atomically, so
    /// a restart resumes from the last folded state (journal cursor
    /// included). Env: `TAXOREC_INGEST_CHECKPOINT`.
    pub checkpoint_path: Option<std::path::PathBuf>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            tick: Duration::from_millis(1000),
            journal_cap: 65_536,
            batch: 4096,
            lr: 0.05,
            margin: 1.0,
            drift_limit: 64,
            max_growth: 100_000,
            max_body: 1024 * 1024,
            checkpoint_path: None,
        }
    }
}

impl IngestOptions {
    /// Defaults overridden by the `TAXOREC_INGEST_*` environment
    /// variables where set and parseable.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Ok(v) = std::env::var("TAXOREC_INGEST") {
            o.enabled = v.trim() == "1";
        }
        if let Some(ms) = env_usize("TAXOREC_INGEST_TICK_MS") {
            o.tick = Duration::from_millis(ms.max(10) as u64);
        }
        if let Some(c) = env_usize("TAXOREC_INGEST_JOURNAL_CAP") {
            o.journal_cap = c.max(1);
        }
        if let Some(b) = env_usize("TAXOREC_INGEST_BATCH") {
            o.batch = b.max(1);
        }
        if let Some(lr) = env_f64("TAXOREC_INGEST_LR") {
            if lr > 0.0 {
                o.lr = lr;
            }
        }
        if let Some(m) = env_f64("TAXOREC_INGEST_MARGIN") {
            if m >= 0.0 {
                o.margin = m;
            }
        }
        if let Some(d) = env_usize("TAXOREC_INGEST_DRIFT_LIMIT") {
            o.drift_limit = d.max(1) as u64;
        }
        if let Some(g) = env_usize("TAXOREC_INGEST_MAX_GROWTH") {
            o.max_growth = g.max(1);
        }
        if let Some(b) = env_usize("TAXOREC_INGEST_MAX_BODY_BYTES") {
            o.max_body = b.max(256);
        }
        if let Ok(p) = std::env::var("TAXOREC_INGEST_CHECKPOINT") {
            let p = p.trim();
            if !p.is_empty() {
                o.checkpoint_path = Some(p.into());
            }
        }
        o
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// One streamed interaction as posted to `/ingest`: ids for user and
/// item (never-seen ids grow the model), tags by display name
/// (never-seen names are allocated ids and grafted into the taxonomy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestInteraction {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// Tag names annotating the interaction.
    pub tags: Vec<String>,
}

/// The bounded interaction journal between `/ingest` and the updater.
///
/// `accepted` / `applied` are *journal cursors*: monotone counts of
/// interactions ever accepted / folded, both starting at the base
/// checkpoint's cursor. `accepted − applied` is the staleness the
/// `serve.ingest.staleness` gauge reports. A single updater thread is
/// the only consumer, which makes `applied` safe to use as the fold's
/// base cursor.
pub struct Journal {
    q: Mutex<VecDeque<IngestInteraction>>,
    accepted: AtomicU64,
    applied: AtomicU64,
    cap: usize,
}

impl Journal {
    /// An empty journal with both cursors at `base_cursor` (the cursor
    /// stored in the checkpoint being served, or 0).
    pub fn new(cap: usize, base_cursor: u64) -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            accepted: AtomicU64::new(base_cursor),
            applied: AtomicU64::new(base_cursor),
            cap: cap.max(1),
        }
    }

    /// Appends a batch, all-or-nothing. `Err(queued)` when the batch
    /// does not fit (caller answers `503 + Retry-After`).
    pub fn push_batch(&self, batch: Vec<IngestInteraction>) -> Result<usize, usize> {
        let n = batch.len();
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() + n > self.cap {
            return Err(q.len());
        }
        q.extend(batch);
        let depth = q.len();
        drop(q);
        self.accepted.fetch_add(n as u64, Ordering::SeqCst);
        taxorec_telemetry::counter("serve.ingest.accepted").inc(n as u64);
        taxorec_telemetry::gauge("serve.ingest.queue").set(depth as f64);
        Ok(n)
    }

    /// Removes and returns up to `max` interactions, oldest first.
    pub fn drain(&self, max: usize) -> Vec<IngestInteraction> {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        let n = max.min(q.len());
        let out: Vec<_> = q.drain(..n).collect();
        taxorec_telemetry::gauge("serve.ingest.queue").set(q.len() as f64);
        out
    }

    /// Records `n` more interactions as folded into the serving model.
    pub fn mark_applied(&self, n: u64) {
        self.applied.fetch_add(n, Ordering::SeqCst);
    }

    /// Interactions currently queued.
    pub fn len(&self) -> usize {
        self.q.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Always check [`Journal::len`]; a journal is routinely empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Journal capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total interactions ever accepted (cursor units).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Total interactions folded into the serving model (cursor units).
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Accepted-but-not-yet-served interaction count.
    pub fn staleness(&self) -> u64 {
        self.accepted().saturating_sub(self.applied())
    }
}

// ---------------------------------------------------------------------
// `POST /ingest` body parsing (std-only, minimal JSON)
// ---------------------------------------------------------------------

/// Parsed JSON value — just enough of the grammar for ingest bodies.
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Deepest array/object nesting accepted. Bounds parser recursion: a
/// hostile body of repeated `[`/`{` (well under `max_body`) would
/// otherwise overflow the worker stack, and stack overflow aborts the
/// process — it is not an unwinding panic, so the `catch_unwind`
/// isolation around request handling cannot contain it.
const MAX_JSON_DEPTH: usize = 64;

struct JsonParser<'a> {
    s: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            s: s.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(open @ (b'{' | b'[')) => {
                if self.depth >= MAX_JSON_DEPTH {
                    return Err(self.err("nesting too deep"));
                }
                self.depth += 1;
                let v = if open == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: expect the low half next.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.s[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("bad \\u escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 comes through unmodified; find
                    // the char boundary via the str view.
                    let rest = std::str::from_utf8(&self.s[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .s
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn get<'j>(obj: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u32(v: &Json, what: &str) -> Result<u32, String> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => Ok(*n as u32),
        _ => Err(format!("{what} must be a non-negative integer id")),
    }
}

/// Parses a `POST /ingest` body:
/// `{"interactions":[{"user":N,"item":N,"tags":["name",…]},…]}`
/// (`tags` optional per interaction; unknown keys ignored).
pub fn parse_ingest_body(body: &str) -> Result<Vec<IngestInteraction>, String> {
    let mut p = JsonParser::new(body);
    let top = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing bytes after the JSON document"));
    }
    let Json::Obj(fields) = top else {
        return Err("body must be a JSON object with an \"interactions\" array".into());
    };
    let Some(Json::Arr(raw)) = get(&fields, "interactions") else {
        return Err("missing \"interactions\" array".into());
    };
    let mut out = Vec::with_capacity(raw.len());
    for (i, entry) in raw.iter().enumerate() {
        let Json::Obj(e) = entry else {
            return Err(format!("interactions[{i}] is not an object"));
        };
        let user = as_u32(
            get(e, "user").ok_or_else(|| format!("interactions[{i}] missing \"user\""))?,
            "user",
        )?;
        let item = as_u32(
            get(e, "item").ok_or_else(|| format!("interactions[{i}] missing \"item\""))?,
            "item",
        )?;
        let tags = match get(e, "tags") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(ts)) => {
                let mut tags = Vec::with_capacity(ts.len());
                for t in ts {
                    match t {
                        Json::Str(s) if !s.is_empty() => tags.push(s.clone()),
                        _ => {
                            return Err(format!("interactions[{i}].tags must be non-empty strings"))
                        }
                    }
                }
                tags
            }
            Some(_) => return Err(format!("interactions[{i}].tags must be an array")),
        };
        out.push(IngestInteraction { user, item, tags });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The fold: journal → checkpoint
// ---------------------------------------------------------------------

/// What one [`fold_batch`] call did to the checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldReport {
    /// Interactions folded (including deterministically skipped ones).
    pub applied: usize,
    /// Interactions skipped by the hostile-id growth guard.
    pub dropped: usize,
    /// User/item/tag rows grown.
    pub new_users: usize,
    /// Item rows grown (also patched into the retrieval index).
    pub new_items: usize,
    /// Tag rows grown (each grafted into the taxonomy).
    pub new_tags: usize,
    /// Tags grafted by placement attachment.
    pub attached: usize,
    /// Full Algorithm-1 taxonomy (+ index) rebuilds triggered by drift.
    pub rebuilds: usize,
    /// Journal cursor after the fold.
    pub cursor: u64,
}

/// Folds `batch` into `ckpt` strictly per-interaction, in journal
/// order, starting at the checkpoint's journal cursor:
///
/// 1. tag names resolve to ids (never-seen names are allocated the next
///    id, sequentially — so the id assignment is a function of the
///    journal prefix);
/// 2. one incremental RSGD step
///    ([`taxorec_core::incremental::apply_interactions`]), growing
///    matrices for never-seen ids;
/// 3. serving context (`item_tags`, `seen_items`) is updated;
/// 4. each never-seen tag is **grafted** into the taxonomy by
///    hyperbolic placement ([`taxorec_taxonomy::attach_tag`]),
///    incrementing `drift`;
/// 5. when `drift` reaches [`IngestOptions::drift_limit`], the taxonomy
///    is rebuilt from scratch with Algorithm 1 and the retrieval index
///    with it (reconciliation), and `drift` resets;
/// 6. never-seen items are patched into the retrieval index
///    ([`taxorec_retrieval::IndexParts::append_items`]) without a
///    rebuild.
///
/// An interaction rejected by the growth guard is *skipped
/// deterministically* (the cursor still advances), so a hostile id
/// cannot wedge the stream or desynchronize a replay.
///
/// `drift` is the caller-threaded graft counter (start at 0 for a fresh
/// base checkpoint); threading it across calls is what makes chunked
/// folding bit-identical to one whole-journal fold.
///
/// On `Err` the checkpoint (and `drift`) may hold a *partially applied*
/// batch whose journal cursor has **not** been advanced — callers must
/// restore both from a pre-call snapshot before folding anything else,
/// or replay from the persisted cursor will desync.
pub fn fold_batch(
    ckpt: &mut Checkpoint,
    batch: &[IngestInteraction],
    opts: &IngestOptions,
    drift: &mut u64,
) -> Result<FoldReport, String> {
    let mut report = FoldReport {
        cursor: ckpt.journal_cursor.unwrap_or(0),
        ..FoldReport::default()
    };
    if batch.is_empty() {
        return Ok(report);
    }
    let inc_cfg = IncrementalConfig {
        lr: opts.lr,
        margin: opts.margin,
        seed: ckpt.state.config.seed,
        max_growth: opts.max_growth,
    };
    // Serving context must stay length-consistent with the growing
    // model (checkpoint validation requires all-or-nothing lists), so
    // materialize placeholders once ingestion starts.
    if ckpt.tag_names.is_empty() && ckpt.state.n_tags() > 0 {
        ckpt.tag_names = (0..ckpt.state.n_tags())
            .map(|t| format!("tag{t}"))
            .collect();
    }
    if ckpt.item_tags.is_empty() {
        ckpt.item_tags = vec![Vec::new(); ckpt.state.n_items()];
    }
    if ckpt.seen_items.is_empty() {
        ckpt.seen_items = vec![Vec::new(); ckpt.state.n_users()];
    }
    // Name→id index mirroring `ckpt.tag_names` positions (first
    // occurrence wins, matching what a linear scan would resolve).
    // Lookups only, so determinism is untouched — it just replaces the
    // per-tag O(n_tags) scan that made tick latency grow with the
    // catalogue.
    let mut name_index: HashMap<String, u32> = HashMap::with_capacity(ckpt.tag_names.len());
    for (id, name) in ckpt.tag_names.iter().enumerate() {
        name_index.entry(name.clone()).or_insert(id as u32);
    }

    for raw in batch {
        let cursor = report.cursor;
        report.cursor += 1;
        report.applied += 1;

        // 1. Resolve tag names sequentially; allocate ids for new ones.
        // Fresh names enter the index immediately, so a name repeated
        // within one interaction resolves to a single id instead of
        // allocating a phantom placeholder row.
        let mut tag_ids = Vec::with_capacity(raw.tags.len());
        let mut fresh_names: Vec<&String> = Vec::new();
        for name in &raw.tags {
            match name_index.get(name.as_str()) {
                Some(&id) => tag_ids.push(id),
                None => {
                    let id = (ckpt.tag_names.len() + fresh_names.len()) as u32;
                    name_index.insert(name.clone(), id);
                    fresh_names.push(name);
                    tag_ids.push(id);
                }
            }
        }

        // 2. Incremental RSGD (grows matrices for never-seen ids).
        let one = Interaction {
            user: raw.user,
            item: raw.item,
            tags: tag_ids.clone(),
        };
        let r = match apply_interactions(&mut ckpt.state, cursor, &[one], &inc_cfg) {
            Ok(r) => r,
            Err(e) => {
                // The model did not grow; the speculative id
                // allocations must not survive the drop either.
                for name in &fresh_names {
                    name_index.remove(name.as_str());
                }
                report.dropped += 1;
                taxorec_telemetry::counter("serve.ingest.dropped").inc(1);
                taxorec_telemetry::sink::warn(&format!(
                    "ingest: interaction at cursor {cursor} dropped: {e}"
                ));
                continue;
            }
        };
        report.new_users += r.new_users;
        report.new_items += r.new_items;
        report.new_tags += r.new_tags;

        // 3. Serving context follows the growth. New tag names land at
        // exactly the ids resolved above (both count up from the same
        // lengths); gap rows get placeholders.
        for name in fresh_names {
            ckpt.tag_names.push(name.clone());
        }
        while ckpt.tag_names.len() < ckpt.state.n_tags() {
            let name = format!("tag{}", ckpt.tag_names.len());
            name_index
                .entry(name.clone())
                .or_insert(ckpt.tag_names.len() as u32);
            ckpt.tag_names.push(name);
        }
        ckpt.item_tags.resize(ckpt.state.n_items(), Vec::new());
        ckpt.seen_items.resize(ckpt.state.n_users(), Vec::new());
        let it = &mut ckpt.item_tags[raw.item as usize];
        for &t in &tag_ids {
            if let Err(at) = it.binary_search(&t) {
                it.insert(at, t);
            }
        }
        let seen = &mut ckpt.seen_items[raw.user as usize];
        if let Err(at) = seen.binary_search(&raw.item) {
            seen.insert(at, raw.item);
        }

        if !ckpt.state.tags_active {
            continue;
        }
        let dim_tag = ckpt.state.config.dim_tag;

        // 4. Graft never-seen tags (each exactly once, even when the
        // interaction repeats a fresh name); 5. rebuild on accumulated
        // drift. Fresh ids are exactly the rows the model grew by.
        let first_new = ckpt.state.n_tags() - r.new_tags;
        for t in first_new as u32..ckpt.state.n_tags() as u32 {
            if let Some(taxo) = ckpt.state.taxonomy.as_mut() {
                match attach_tag(taxo, t, ckpt.state.t_p.data(), dim_tag) {
                    Ok(_) => {
                        report.attached += 1;
                        *drift += 1;
                        taxorec_telemetry::counter("serve.ingest.attached").inc(1);
                    }
                    Err(e) => {
                        taxorec_telemetry::sink::warn(&format!("ingest: tag {t} not attached: {e}"))
                    }
                }
            }
        }
        let mut rebuilt = false;
        if *drift >= opts.drift_limit && ckpt.state.taxonomy.is_some() {
            let cfg = &ckpt.state.config;
            let taxo_cfg = ConstructConfig {
                k: cfg.taxo_k,
                delta: cfg.taxo_delta,
                min_node_size: cfg.taxo_min_node,
                max_depth: cfg.taxo_max_depth,
                seeding: cfg.taxo_seeding,
                seed: cfg.seed,
                ..ConstructConfig::default()
            };
            let taxo = construct_taxonomy(
                ckpt.state.t_p.data(),
                dim_tag,
                ckpt.state.n_tags(),
                &ckpt.item_tags,
                &taxo_cfg,
            );
            ckpt.state.taxonomy = Some(taxo);
            *drift = 0;
            rebuilt = true;
            report.rebuilds += 1;
            taxorec_telemetry::counter("serve.ingest.rebuilds").inc(1);
        }

        // 6. Retrieval index: patch new items in; rebuild with the
        // taxonomy when reconciliation fired (node ids churned).
        if let Some(parts) = ckpt.index.as_mut() {
            if rebuilt {
                let index_cfg = parts.config;
                let items = item_embeddings(&ckpt.state);
                match TaxoIndex::build(
                    &items,
                    ckpt.state.taxonomy.as_ref(),
                    &ckpt.item_tags,
                    &index_cfg,
                ) {
                    Ok(index) => *parts = index.parts().clone(),
                    Err(e) => {
                        // Keep the old (still-valid) tree rather than
                        // dropping sub-linear retrieval entirely.
                        taxorec_telemetry::sink::warn(&format!(
                            "ingest: index rebuild failed, keeping the patched tree: {e}"
                        ));
                        let items = item_embeddings(&ckpt.state);
                        parts.append_items(&items)?;
                    }
                }
            } else if r.new_items > 0 {
                let items = item_embeddings(&ckpt.state);
                parts.append_items(&items)?;
            }
        }
    }
    // Index patch-in for runs without a tag channel (the loop above
    // short-circuits before step 6 when tags are inactive).
    if !ckpt.state.tags_active {
        if let Some(parts) = ckpt.index.as_mut() {
            let items = item_embeddings(&ckpt.state);
            parts.append_items(&items)?;
        }
    }

    ckpt.journal_cursor = Some(report.cursor);
    taxorec_telemetry::counter("serve.ingest.applied")
        .inc((report.applied - report.dropped) as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_ingest_body() {
        let body = r#"{"interactions":[
            {"user":3,"item":7,"tags":["rock","jazz \"live\""]},
            {"item":2,"user":0},
            {"user":1,"item":4,"tags":[],"note":"ignored"}
        ]}"#;
        let got = parse_ingest_body(body).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].user, 3);
        assert_eq!(
            got[0].tags,
            vec!["rock".to_string(), "jazz \"live\"".to_string()]
        );
        assert_eq!(
            got[1],
            IngestInteraction {
                user: 0,
                item: 2,
                tags: vec![]
            }
        );
        assert!(got[2].tags.is_empty());
    }

    #[test]
    fn rejects_malformed_bodies() {
        for bad in [
            "",
            "[]",
            "{\"interactions\":3}",
            "{}",
            "{\"interactions\":[{\"user\":1}]}",
            "{\"interactions\":[{\"user\":-1,\"item\":0}]}",
            "{\"interactions\":[{\"user\":1.5,\"item\":0}]}",
            "{\"interactions\":[{\"user\":1,\"item\":0,\"tags\":[3]}]}",
            "{\"interactions\":[]} trailing",
            "{\"interactions\":[{\"user\":4294967296,\"item\":0}]}",
        ] {
            assert!(parse_ingest_body(bad).is_err(), "accepted: {bad:?}");
        }
    }

    /// Regression: a body of repeated `[`/`{` must be rejected by the
    /// depth bound, not recurse once per byte — unbounded recursion
    /// overflows the worker stack and aborts the whole process (stack
    /// overflow is not an unwindable panic).
    #[test]
    fn rejects_deeply_nested_bodies_without_recursing() {
        let bombs = [
            "[".repeat(200_000),
            "{\"interactions\":".repeat(100_000),
            format!("{{\"interactions\":[{}", "[".repeat(200_000)),
        ];
        for bomb in &bombs {
            let err = parse_ingest_body(bomb).unwrap_err();
            assert!(err.contains("nesting too deep"), "{err}");
        }
        // Ordinary bodies sit far below the bound.
        let ok = r#"{"interactions":[{"user":1,"item":2,"tags":["a"]}]}"#;
        assert!(parse_ingest_body(ok).is_ok());
        // Exactly at the bound still parses (the limit is on nesting
        // depth, not total size).
        let at_limit = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        let mut p = JsonParser::new(&at_limit);
        assert!(p.value().is_ok(), "depth {MAX_JSON_DEPTH} must parse");
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        let mut p = JsonParser::new(&over);
        assert!(p.value().is_err(), "depth {} must not", MAX_JSON_DEPTH + 1);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let body = "{\"interactions\":[{\"user\":1,\"item\":2,\"tags\":[\"a\\u00e9\\n\",\"emoji \\ud83d\\ude00\",\"naïve\"]}]}";
        let got = parse_ingest_body(body).unwrap();
        assert_eq!(got[0].tags[0], "aé\n");
        assert_eq!(got[0].tags[1], "emoji 😀");
        assert_eq!(got[0].tags[2], "naïve");
    }

    #[test]
    fn journal_enforces_capacity_all_or_nothing() {
        let j = Journal::new(3, 10);
        let mk = |n: usize| {
            (0..n)
                .map(|i| IngestInteraction {
                    user: i as u32,
                    item: 0,
                    tags: vec![],
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(j.push_batch(mk(2)), Ok(2));
        assert_eq!(j.push_batch(mk(2)), Err(2), "over capacity: rejected whole");
        assert_eq!(j.len(), 2, "rejected batch left no residue");
        assert_eq!(j.push_batch(mk(1)), Ok(1));
        assert_eq!(j.accepted(), 13);
        assert_eq!(j.staleness(), 3);
        let drained = j.drain(2);
        assert_eq!(drained.len(), 2);
        assert_eq!(j.len(), 1);
        j.mark_applied(2);
        assert_eq!(j.applied(), 12);
        assert_eq!(j.staleness(), 1);
    }

    #[test]
    fn ingest_options_env_round_trip() {
        // Only defaults here (env mutation belongs to integration
        // tests); from_env on a clean env must equal Default except for
        // whatever the ambient environment actually sets.
        let d = IngestOptions::default();
        assert!(!d.enabled);
        assert!(d.journal_cap > 0 && d.batch > 0 && d.max_body > 0);
        assert!(d.tick >= Duration::from_millis(10));
    }
}
