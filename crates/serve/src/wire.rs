//! Byte-level encoding for the `.taxo` artifact: little-endian primitive
//! writers/readers and the CRC-32 (IEEE 802.3) checksum.
//!
//! Everything here is length-checked: a [`Reader`] never panics on a
//! short buffer, it returns a [`CheckpointError::Corrupt`] naming the
//! field being decoded and the byte offset where the payload ran dry.

use crate::checkpoint::CheckpointError;

/// CRC-32 lookup table (reflected polynomial 0xEDB88320), built at
/// compile time.
const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE) of `data` — the checksum gzip, PNG, and zip use.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends little-endian primitives to a growable byte buffer.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed `f64` slice (bit-exact round trip).
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }
}

/// Cursor over a payload buffer; every read is bounds-checked and failure
/// messages carry the field name and offset.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the whole payload was consumed.
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} unexpected trailing bytes after the last section",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Corrupt(format!(
                "payload ends while reading {what}: need {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_bool(&mut self, what: &str) -> Result<bool, CheckpointError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CheckpointError::Corrupt(format!(
                "{what}: invalid boolean byte {v}"
            ))),
        }
    }

    pub fn get_u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_usize(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| {
            CheckpointError::Corrupt(format!("{what}: value {v} overflows this platform's usize"))
        })
    }

    /// A length prefix that announces at least `elem_size` bytes per
    /// element: rejected immediately when it exceeds the remaining
    /// payload, so a corrupted length cannot trigger a huge allocation.
    pub fn get_len(&mut self, elem_size: usize, what: &str) -> Result<usize, CheckpointError> {
        let n = self.get_usize(what)?;
        if n.checked_mul(elem_size)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(CheckpointError::Corrupt(format!(
                "{what}: declared length {n} exceeds the remaining {} payload bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub fn get_str(&mut self, what: &str) -> Result<String, CheckpointError> {
        let n = self.get_len(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CheckpointError::Corrupt(format!("{what}: invalid UTF-8: {e}")))
    }

    pub fn get_f64s(&mut self, what: &str) -> Result<Vec<f64>, CheckpointError> {
        let n = self.get_len(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64(what)?);
        }
        Ok(out)
    }

    pub fn get_u32s(&mut self, what: &str) -> Result<Vec<u32>, CheckpointError> {
        let n = self.get_len(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u32(what)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical test vector from the CRC-32 specification.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_str("héllo");
        w.put_f64s(&[1.5, f64::MIN_POSITIVE, -0.0]);
        w.put_u32s(&[3, 1, 4]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert!(r.get_bool("b").unwrap());
        assert_eq!(r.get_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64("e").unwrap(), -0.125);
        assert_eq!(r.get_str("f").unwrap(), "héllo");
        let fs = r.get_f64s("g").unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[2].to_bits(), (-0.0f64).to_bits(), "bit-exact");
        assert_eq!(r.get_u32s("h").unwrap(), vec![3, 1, 4]);
        assert_eq!(r.expect_end(), Ok(()));
    }

    #[test]
    fn reader_reports_field_and_offset_on_underrun() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_u32("user count").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("user count"), "{msg}");
        assert!(msg.contains("offset 0"), "{msg}");
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_f64s("embeddings").is_err());
    }

    #[test]
    fn bad_boolean_byte_is_corrupt() {
        let mut r = Reader::new(&[2]);
        assert!(r
            .get_bool("flag")
            .unwrap_err()
            .to_string()
            .contains("boolean"));
    }
}
