//! The `.taxo` checkpoint format: a versioned, magic-tagged,
//! CRC-checksummed binary artifact holding everything needed to serve a
//! trained TaxoRec model.
//!
//! ## Artifact layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TAXO"
//! 4       2     format version (u16 LE, currently 1)
//! 6       2     reserved flags (must be 0)
//! 8       8     payload length P (u64 LE)
//! 16      P     payload (sections below, all integers LE)
//! 16+P    4     CRC-32 (IEEE) of the payload (u32 LE)
//! ```
//!
//! Payload sections, in order: model name · training config · tag-channel
//! flag · five embedding matrices (`u_ir`, `v_ir`, `u_tg`, `v_tg`, `T^P`;
//! each `rows, cols, f64×rows·cols`) · personalized tag weights `α_u` ·
//! optional taxonomy tree (node list) · tag names · per-item tag lists ·
//! per-user seen-item lists (train-set exclusion for serving) · optional
//! retrieval index structure (present iff [`FLAG_RETRIEVAL_INDEX`] is set
//! in the header flags — artifacts written without an index are
//! byte-identical to the pre-index format, and old artifacts load with
//! `index = None` and serve through the exhaustive path).
//!
//! Floats are stored bit-exactly (`to_le_bytes`), so a reloaded model
//! scores **bit-identically** to the live one. [`Checkpoint::from_bytes`]
//! validates magic, version, length, checksum, and (through
//! [`ModelState::validate`]) dimension consistency, failing with a precise
//! [`CheckpointError`] on truncated or corrupted files.

use std::path::Path;

use taxorec_autodiff::Matrix;
use taxorec_core::{ModelState, TaxoRec, TaxoRecConfig, TrainState};
use taxorec_data::Dataset;
use taxorec_retrieval::{IndexConfig, IndexParts, ItemEmbeddings, TaxoIndex};
use taxorec_taxonomy::{Seeding, TaxoNode, Taxonomy};

use crate::model::ServingModel;
use crate::wire::{crc32, Reader, Writer};

/// First four bytes of every `.taxo` artifact.
pub const MAGIC: [u8; 4] = *b"TAXO";
/// The format version this build writes and the newest it can read.
pub const FORMAT_VERSION: u16 = 1;
/// Header flag bit marking a **training checkpoint** (resumable
/// [`TrainState`]) rather than a serving artifact. The two payloads share
/// the container (magic, version, length, CRC) but not the section
/// layout, so the flag keeps either loader from misparsing the other's
/// file with a confusing section-level error.
pub const FLAG_TRAIN_STATE: u16 = 0x1;
/// Header flag bit marking that the payload carries a serialized
/// retrieval index ([`IndexParts`]) after the seen-item section. The
/// index stores tree **structure** only (ranges, centroids, radii); the
/// permuted kernel caches are rebuilt from the model embeddings at load
/// time, so the section stays small and can never disagree with the
/// matrices it routes over.
pub const FLAG_RETRIEVAL_INDEX: u16 = 0x2;
/// Header flag bit marking that the payload ends with a **journal
/// cursor**: the number of streamed interactions already folded into
/// the embeddings by the online-update loop. A restarted ingester
/// resumes replay from this cursor instead of re-applying (or losing)
/// interactions, keeping the incremental path's bit-identical-replay
/// guarantee across restarts. Absent on offline-trained artifacts.
pub const FLAG_JOURNAL_CURSOR: u16 = 0x4;
/// Fixed header size: magic + version + flags + payload length.
const HEADER_LEN: usize = 16;
/// CRC-32 trailer size.
const TRAILER_LEN: usize = 4;

/// Why a checkpoint could not be written or read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (open/read/write/rename), with context.
    Io(String),
    /// The file is smaller than the fixed header + trailer.
    TooShort {
        /// Bytes actually present.
        found: usize,
        /// Minimum bytes any valid artifact has.
        minimum: usize,
    },
    /// The first four bytes are not `b"TAXO"` — not a checkpoint at all.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Written by a newer (or unknown) format revision.
    UnsupportedVersion {
        /// Version tag in the file.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The header promises more bytes than the file contains.
    Truncated {
        /// Total size the header implies.
        expected: usize,
        /// Actual file size.
        found: usize,
    },
    /// Payload bytes do not hash to the stored CRC-32 (bit rot, partial
    /// overwrite, or tampering).
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum of the payload as read.
        computed: u32,
    },
    /// The payload decodes inconsistently (bad section lengths, invalid
    /// enum tags, trailing bytes) despite a matching checksum.
    Corrupt(String),
    /// Decoded cleanly but the model fails semantic validation
    /// (dimension mismatches, out-of-range ids, invalid taxonomy links).
    Invalid(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            Self::TooShort { found, minimum } => write!(
                f,
                "truncated checkpoint: {found} bytes, but even an empty artifact has {minimum}"
            ),
            Self::BadMagic { found } => write!(
                f,
                "bad magic {found:02x?} (expected {:02x?} — not a .taxo checkpoint)",
                MAGIC
            ),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads up to {supported})"
            ),
            Self::Truncated { expected, found } => write!(
                f,
                "truncated checkpoint: header declares {expected} bytes, file has {found}"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:08x}, computed {computed:08x} — the payload is corrupted"
            ),
            Self::Corrupt(m) => write!(f, "corrupt checkpoint payload: {m}"),
            Self::Invalid(m) => write!(f, "checkpoint decodes but fails validation: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Wire-level identity of a parsed `.taxo` artifact: the container
/// version, the CRC-32 the loader verified, and the artifact size.
///
/// Surfaced through `/healthz` (`"shard":{"checkpoint":{…}}`) so a
/// fleet operator — or the shard router — can tell *which bytes* every
/// shard is serving: a warm reload is observable as the CRC changing
/// while the shard stays up, and a version/CRC mismatch across shards
/// is a deploy bug caught by a dashboard instead of a ranking diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Container format version from the header.
    pub version: u16,
    /// CRC-32 of the payload, as verified at load time.
    pub crc: u32,
    /// Total artifact size in bytes (header + payload + trailer).
    pub bytes: u64,
}

/// A trained model plus the serving-side context (tag names, item tags,
/// seen items) that lives in the dataset rather than the model itself.
///
/// Build one with [`Checkpoint::from_model`], enrich it with
/// [`Checkpoint::with_dataset`] / [`Checkpoint::with_seen_items`], then
/// [`Checkpoint::save`]. [`load`] goes straight to a [`ServingModel`].
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The exported model snapshot.
    pub state: ModelState,
    /// Tag display names (empty = unknown; `explain` falls back to
    /// `tag<N>` placeholders).
    pub tag_names: Vec<String>,
    /// `item_tags[v]` lists the tags of item `v` (empty = unknown —
    /// `explain` then has no item-level rationale).
    pub item_tags: Vec<Vec<u32>>,
    /// `seen_items[u]` lists items user `u` interacted with in training,
    /// sorted; the query engine excludes them from recommendations.
    /// Empty = no exclusion information.
    pub seen_items: Vec<Vec<u32>>,
    /// Serialized retrieval-index structure for sub-linear candidate
    /// generation ([`FLAG_RETRIEVAL_INDEX`] in the header). `None` =
    /// the artifact serves through the exhaustive path only.
    pub index: Option<IndexParts>,
    /// Wire identity of the artifact this checkpoint was parsed from
    /// (`None` for an in-memory checkpoint that never hit the wire).
    /// Not serialized — recomputed on every load.
    pub artifact: Option<ArtifactInfo>,
    /// Journal position (count of streamed interactions folded in) when
    /// this artifact was produced by the online-update loop
    /// ([`FLAG_JOURNAL_CURSOR`] in the header). `None` = offline
    /// artifact, no streaming history.
    pub journal_cursor: Option<u64>,
}

impl Checkpoint {
    /// Snapshots a trained model without dataset context.
    pub fn from_model(model: &TaxoRec) -> Self {
        Self {
            state: model.export_state(),
            tag_names: Vec::new(),
            item_tags: Vec::new(),
            seen_items: Vec::new(),
            index: None,
            artifact: None,
            journal_cursor: None,
        }
    }

    /// Records the journal position this artifact reflects (set by the
    /// online-update loop on every fold-and-swap tick).
    pub fn with_journal_cursor(mut self, cursor: u64) -> Self {
        self.journal_cursor = Some(cursor);
        self
    }

    /// Attaches tag names and per-item tag lists from the dataset so the
    /// serving side can explain recommendations.
    pub fn with_dataset(mut self, dataset: &Dataset) -> Self {
        self.tag_names = dataset.tag_names.clone();
        self.item_tags = dataset.item_tags.clone();
        self
    }

    /// Attaches per-user seen-item lists (normally `&split.train`) for
    /// train-item exclusion at query time. Lists are sorted and deduped.
    pub fn with_seen_items(mut self, seen: &[Vec<u32>]) -> Self {
        self.seen_items = seen
            .iter()
            .map(|items| {
                let mut s = items.clone();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        self
    }

    /// Builds a hierarchical retrieval index over the item embeddings
    /// (taxonomy-guided when the model carries one) and embeds its
    /// structure in the artifact, enabling the beam-search `recommend()`
    /// path after reload. Fails on an empty catalogue or degenerate
    /// embeddings; the checkpoint is unchanged on error.
    pub fn with_retrieval_index(mut self, config: &IndexConfig) -> Result<Self, CheckpointError> {
        let parts = {
            let items = item_embeddings(&self.state);
            let index = TaxoIndex::build(
                &items,
                self.state.taxonomy.as_ref(),
                &self.item_tags,
                config,
            )
            .map_err(|e| CheckpointError::Invalid(format!("retrieval index: {e}")))?;
            index.parts().clone()
        };
        self.index = Some(parts);
        Ok(self)
    }

    /// Serializes to the `.taxo` wire format (header + payload + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Writer::new();
        p.put_str(&self.state.name);
        write_config(&mut p, &self.state.config);
        p.put_bool(self.state.tags_active);
        for m in [
            &self.state.u_ir,
            &self.state.v_ir,
            &self.state.u_tg,
            &self.state.v_tg,
            &self.state.t_p,
        ] {
            write_matrix(&mut p, m);
        }
        p.put_f64s(&self.state.alphas);
        match &self.state.taxonomy {
            None => p.put_bool(false),
            Some(taxo) => {
                p.put_bool(true);
                write_taxonomy(&mut p, taxo);
            }
        }
        p.put_usize(self.tag_names.len());
        for name in &self.tag_names {
            p.put_str(name);
        }
        p.put_usize(self.item_tags.len());
        for tags in &self.item_tags {
            p.put_u32s(tags);
        }
        p.put_usize(self.seen_items.len());
        for items in &self.seen_items {
            p.put_u32s(items);
        }
        let mut flags = 0;
        if let Some(parts) = &self.index {
            flags |= FLAG_RETRIEVAL_INDEX;
            write_index(&mut p, parts);
        }
        if let Some(cursor) = self.journal_cursor {
            flags |= FLAG_JOURNAL_CURSOR;
            p.put_u64(cursor);
        }
        seal_container(flags, p.into_bytes())
    }

    /// Parses and fully validates an artifact.
    ///
    /// # Errors
    /// See [`CheckpointError`] — each failure mode is distinguished.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let Container {
            version,
            flags,
            crc,
            payload,
        } = parse_container(bytes)?;
        if flags & FLAG_TRAIN_STATE != 0 {
            return Err(CheckpointError::Corrupt(
                "this is a training checkpoint (resume state), not a serving artifact — \
                 load it with TrainCheckpoint / --resume"
                    .to_string(),
            ));
        }
        if flags & !(FLAG_RETRIEVAL_INDEX | FLAG_JOURNAL_CURSOR) != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "reserved header flags are nonzero ({flags:#06x})"
            )));
        }

        let mut r = Reader::new(payload);
        let name = r.get_str("model name")?;
        let config = read_config(&mut r)?;
        let tags_active = r.get_bool("tags_active flag")?;
        let u_ir = read_matrix(&mut r, "u_ir")?;
        let v_ir = read_matrix(&mut r, "v_ir")?;
        let u_tg = read_matrix(&mut r, "u_tg")?;
        let v_tg = read_matrix(&mut r, "v_tg")?;
        let t_p = read_matrix(&mut r, "t_p")?;
        let alphas = r.get_f64s("alpha weights")?;
        let taxonomy = if r.get_bool("taxonomy presence flag")? {
            Some(read_taxonomy(&mut r)?)
        } else {
            None
        };
        let n_names = r.get_len(8, "tag name count")?;
        let mut tag_names = Vec::with_capacity(n_names);
        for i in 0..n_names {
            tag_names.push(r.get_str(&format!("tag name {i}"))?);
        }
        let n_item_rows = r.get_len(8, "item tag-list count")?;
        let mut item_tags = Vec::with_capacity(n_item_rows);
        for i in 0..n_item_rows {
            item_tags.push(r.get_u32s(&format!("tags of item {i}"))?);
        }
        let n_seen_rows = r.get_len(8, "seen-item list count")?;
        let mut seen_items = Vec::with_capacity(n_seen_rows);
        for u in 0..n_seen_rows {
            seen_items.push(r.get_u32s(&format!("seen items of user {u}"))?);
        }
        let index = if flags & FLAG_RETRIEVAL_INDEX != 0 {
            Some(read_index(&mut r)?)
        } else {
            None
        };
        let journal_cursor = if flags & FLAG_JOURNAL_CURSOR != 0 {
            Some(r.get_u64("journal cursor")?)
        } else {
            None
        };
        r.expect_end()?;

        let ckpt = Self {
            state: ModelState {
                name,
                config,
                tags_active,
                u_ir,
                v_ir,
                u_tg,
                v_tg,
                t_p,
                alphas,
                taxonomy,
            },
            tag_names,
            item_tags,
            seen_items,
            index,
            artifact: Some(ArtifactInfo {
                version,
                crc,
                bytes: bytes.len() as u64,
            }),
            journal_cursor,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Semantic validation of the decoded artifact: model dimension
    /// consistency plus serving-context bounds (seen/tag ids within the
    /// catalogue).
    pub fn validate(&self) -> Result<(), CheckpointError> {
        self.state.validate().map_err(CheckpointError::Invalid)?;
        let n_items = self.state.n_items();
        let n_users = self.state.n_users();
        let n_tags = self.state.n_tags() as u32;
        if !self.tag_names.is_empty() && self.tag_names.len() != n_tags as usize {
            return Err(CheckpointError::Invalid(format!(
                "{} tag names for {n_tags} tag embeddings",
                self.tag_names.len()
            )));
        }
        if !self.item_tags.is_empty() {
            if self.item_tags.len() != n_items {
                return Err(CheckpointError::Invalid(format!(
                    "{} item tag lists for {n_items} items",
                    self.item_tags.len()
                )));
            }
            for (v, tags) in self.item_tags.iter().enumerate() {
                if let Some(&t) = tags.iter().find(|&&t| t >= n_tags) {
                    return Err(CheckpointError::Invalid(format!(
                        "item {v} carries tag {t}, but only {n_tags} tags exist"
                    )));
                }
            }
        }
        if !self.seen_items.is_empty() {
            if self.seen_items.len() != n_users {
                return Err(CheckpointError::Invalid(format!(
                    "{} seen-item lists for {n_users} users",
                    self.seen_items.len()
                )));
            }
            for (u, items) in self.seen_items.iter().enumerate() {
                if let Some(&v) = items.iter().find(|&&v| v as usize >= n_items) {
                    return Err(CheckpointError::Invalid(format!(
                        "user {u} has seen item {v}, but only {n_items} items exist"
                    )));
                }
            }
        }
        if let Some(parts) = &self.index {
            parts
                .validate()
                .map_err(|e| CheckpointError::Invalid(format!("retrieval index: {e}")))?;
            let items = item_embeddings(&self.state);
            if parts.n_items != n_items {
                return Err(CheckpointError::Invalid(format!(
                    "retrieval index covers {} items, model has {n_items}",
                    parts.n_items
                )));
            }
            if parts.ambient_ir != items.ambient_ir || parts.ambient_tg != items.ambient_tg {
                return Err(CheckpointError::Invalid(format!(
                    "retrieval index dimensions ({}, {}) disagree with the model ({}, {})",
                    parts.ambient_ir, parts.ambient_tg, items.ambient_ir, items.ambient_tg
                )));
            }
        }
        Ok(())
    }

    /// Writes the artifact atomically: serialize to `<path>.tmp`, then
    /// rename over `path`, so a crash mid-write never leaves a truncated
    /// artifact under the final name.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        write_atomic(path.as_ref(), &bytes)?;
        taxorec_telemetry::counter("serve.checkpoint.saved").inc(1);
        taxorec_telemetry::gauge("serve.checkpoint.bytes").set(bytes.len() as f64);
        Ok(())
    }

    /// Reads and validates an artifact from disk.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        let ckpt = Self::from_bytes(&bytes)?;
        taxorec_telemetry::counter("serve.checkpoint.loaded").inc(1);
        Ok(ckpt)
    }
}

/// Saves a bare model snapshot (no dataset context) to `path`.
///
/// For a fully featured serving artifact — tag names for explanations,
/// train-item exclusion — go through [`Checkpoint::from_model`] with
/// [`Checkpoint::with_dataset`] and [`Checkpoint::with_seen_items`].
pub fn save(model: &TaxoRec, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    Checkpoint::from_model(model).save(path)
}

/// Loads an artifact from `path` and builds the online query engine.
pub fn load(path: impl AsRef<Path>) -> Result<ServingModel, CheckpointError> {
    ServingModel::new(Checkpoint::load_file(path)?)
}

/// A resumable mid-training snapshot in the `.taxo` container
/// ([`FLAG_TRAIN_STATE`] set in the header flags).
///
/// Written periodically by `taxorec-serve train-demo --checkpoint-every`
/// and read back by `--resume`; the payload is exactly a
/// [`TrainState`] — raw parameters, RNG words, learning-rate scale, loss
/// history, and the last-rebuild taxonomy — so a resumed run continues
/// **bit-identically** (see `taxorec_core::fit_control`).
#[derive(Clone, Debug)]
pub struct TrainCheckpoint {
    /// The resumable training state.
    pub state: TrainState,
}

impl TrainCheckpoint {
    /// Wraps a captured training state.
    pub fn new(state: TrainState) -> Self {
        Self { state }
    }

    /// Serializes to the `.taxo` wire format with [`FLAG_TRAIN_STATE`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let s = &self.state;
        let mut p = Writer::new();
        write_config(&mut p, &s.config);
        p.put_usize(s.next_epoch);
        for &w in &s.rng_state {
            p.put_u64(w);
        }
        p.put_f64(s.lr_scale);
        p.put_usize(s.rollbacks);
        for m in [&s.u_ir, &s.v_ir, &s.u_tg, &s.t_p] {
            write_matrix(&mut p, m);
        }
        p.put_f64s(&s.loss_history);
        match &s.taxonomy {
            None => p.put_bool(false),
            Some(taxo) => {
                p.put_bool(true);
                write_taxonomy(&mut p, taxo);
            }
        }
        seal_container(FLAG_TRAIN_STATE, p.into_bytes())
    }

    /// Parses and validates a training checkpoint.
    ///
    /// # Errors
    /// See [`CheckpointError`]; a serving artifact (flags without
    /// [`FLAG_TRAIN_STATE`]) is rejected with a pointed message.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let Container { flags, payload, .. } = parse_container(bytes)?;
        if flags & FLAG_TRAIN_STATE == 0 {
            return Err(CheckpointError::Corrupt(
                "this is a serving artifact, not a training checkpoint — \
                 pass it to `serve`/`inspect` instead of --resume"
                    .to_string(),
            ));
        }
        if flags != FLAG_TRAIN_STATE {
            return Err(CheckpointError::Corrupt(format!(
                "unknown header flag bits ({flags:#06x})"
            )));
        }
        let mut r = Reader::new(payload);
        let config = read_config(&mut r)?;
        let next_epoch = r.get_usize("next_epoch")?;
        let mut rng_state = [0u64; 4];
        for (i, w) in rng_state.iter_mut().enumerate() {
            *w = r.get_u64(&format!("rng word {i}"))?;
        }
        let lr_scale = r.get_f64("lr_scale")?;
        let rollbacks = r.get_usize("rollback count")?;
        let u_ir = read_matrix(&mut r, "u_ir")?;
        let v_ir = read_matrix(&mut r, "v_ir")?;
        let u_tg = read_matrix(&mut r, "u_tg")?;
        let t_p = read_matrix(&mut r, "t_p")?;
        let loss_history = r.get_f64s("loss history")?;
        let taxonomy = if r.get_bool("taxonomy presence flag")? {
            Some(read_taxonomy(&mut r)?)
        } else {
            None
        };
        r.expect_end()?;
        let state = TrainState {
            config,
            next_epoch,
            rng_state,
            lr_scale,
            rollbacks,
            u_ir,
            v_ir,
            u_tg,
            t_p,
            loss_history,
            taxonomy,
        };
        state.validate().map_err(CheckpointError::Invalid)?;
        Ok(Self { state })
    }

    /// Writes the checkpoint atomically (tmp + rename), like
    /// [`Checkpoint::save`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        write_atomic(path.as_ref(), &bytes)?;
        taxorec_telemetry::counter("resilience.train_checkpoint.saved").inc(1);
        taxorec_telemetry::gauge("resilience.train_checkpoint.bytes").set(bytes.len() as f64);
        Ok(())
    }

    /// Reads and validates a training checkpoint from disk.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        let ckpt = Self::from_bytes(&bytes)?;
        taxorec_telemetry::counter("resilience.train_checkpoint.loaded").inc(1);
        Ok(ckpt)
    }
}

/// Wraps `payload` in the shared `.taxo` container: header (magic,
/// version, `flags`, length) + payload + CRC-32 trailer.
fn seal_container(flags: u16, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A validated container: header fields plus the checksummed payload.
struct Container<'a> {
    version: u16,
    flags: u16,
    crc: u32,
    payload: &'a [u8],
}

/// Validates the container framing (magic, version, length, checksum)
/// and returns the header fields plus the checksummed payload slice.
fn parse_container(bytes: &[u8]) -> Result<Container<'_>, CheckpointError> {
    let minimum = HEADER_LEN + TRAILER_LEN;
    if bytes.len() < minimum {
        return Err(CheckpointError::TooShort {
            found: bytes.len(),
            minimum,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(CheckpointError::BadMagic {
            found: bytes[0..4].try_into().unwrap(),
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version == 0 || version > FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let expected = (HEADER_LEN as u64)
        .saturating_add(payload_len)
        .saturating_add(TRAILER_LEN as u64);
    let expected = usize::try_from(expected).map_err(|_| CheckpointError::Truncated {
        expected: usize::MAX,
        found: bytes.len(),
    })?;
    if bytes.len() < expected {
        return Err(CheckpointError::Truncated {
            expected,
            found: bytes.len(),
        });
    }
    if bytes.len() > expected {
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes after the checksum",
            bytes.len() - expected
        )));
    }
    let payload = &bytes[HEADER_LEN..expected - TRAILER_LEN];
    let stored = u32::from_le_bytes(bytes[expected - TRAILER_LEN..expected].try_into().unwrap());
    let computed = crc32(payload);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    Ok(Container {
        version,
        flags,
        crc: computed,
        payload,
    })
}

/// Atomic write shared by both checkpoint kinds: serialize to
/// `<path>.tmp`, then rename over `path`, so a crash mid-write never
/// leaves a truncated artifact under the final name. Probes the
/// `checkpoint.save` fault site first, so `TAXOREC_FAULT=io@checkpoint.save:2`
/// deterministically fails the second save.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(msg) = taxorec_resilience::inject_io("checkpoint.save") {
        return Err(CheckpointError::Io(msg));
    }
    let tmp = path.with_extension("taxo.tmp");
    std::fs::write(&tmp, bytes)
        .map_err(|e| CheckpointError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        CheckpointError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

fn write_matrix(w: &mut Writer, m: &Matrix) {
    w.put_usize(m.rows());
    w.put_usize(m.cols());
    for &v in m.data() {
        w.put_f64(v);
    }
}

fn read_matrix(r: &mut Reader, what: &str) -> Result<Matrix, CheckpointError> {
    let rows = r.get_usize(&format!("{what} row count"))?;
    let cols = r.get_usize(&format!("{what} column count"))?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| CheckpointError::Corrupt(format!("{what}: {rows}×{cols} overflows")))?;
    if n.checked_mul(8).is_none_or(|b| b > r.remaining()) {
        return Err(CheckpointError::Corrupt(format!(
            "{what}: declared shape {rows}×{cols} exceeds the remaining payload"
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.get_f64(what)?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn write_config(w: &mut Writer, c: &TaxoRecConfig) {
    w.put_usize(c.dim_ir);
    w.put_usize(c.dim_tag);
    w.put_usize(c.gcn_layers);
    w.put_f64(c.margin);
    w.put_f64(c.lambda);
    w.put_usize(c.taxo_k);
    w.put_f64(c.taxo_delta);
    w.put_usize(c.taxo_rebuild_every);
    w.put_f64(c.taxo_warmup_frac);
    w.put_u8(match c.taxo_seeding {
        Seeding::PlusPlus => 0,
        Seeding::Uniform => 1,
    });
    w.put_usize(c.taxo_max_depth);
    w.put_usize(c.taxo_min_node);
    w.put_bool(c.use_aggregation);
    w.put_bool(c.use_tags);
    w.put_bool(c.einstein_local);
    w.put_f64(c.lr);
    w.put_f64(c.lr_tag_mult);
    w.put_usize(c.epochs);
    w.put_usize(c.negatives);
    w.put_f64(c.tag_channel_gain);
    w.put_bool(c.soft_hinge);
    match c.max_radius {
        None => w.put_bool(false),
        Some(r) => {
            w.put_bool(true);
            w.put_f64(r);
        }
    }
    w.put_usize(c.hard_negative_pool);
    w.put_usize(c.batch_size);
    w.put_u64(c.seed);
}

fn read_config(r: &mut Reader) -> Result<TaxoRecConfig, CheckpointError> {
    Ok(TaxoRecConfig {
        dim_ir: r.get_usize("config.dim_ir")?,
        dim_tag: r.get_usize("config.dim_tag")?,
        gcn_layers: r.get_usize("config.gcn_layers")?,
        margin: r.get_f64("config.margin")?,
        lambda: r.get_f64("config.lambda")?,
        taxo_k: r.get_usize("config.taxo_k")?,
        taxo_delta: r.get_f64("config.taxo_delta")?,
        taxo_rebuild_every: r.get_usize("config.taxo_rebuild_every")?,
        taxo_warmup_frac: r.get_f64("config.taxo_warmup_frac")?,
        taxo_seeding: match r.get_u8("config.taxo_seeding")? {
            0 => Seeding::PlusPlus,
            1 => Seeding::Uniform,
            v => {
                return Err(CheckpointError::Corrupt(format!(
                    "config.taxo_seeding: unknown variant tag {v}"
                )))
            }
        },
        taxo_max_depth: r.get_usize("config.taxo_max_depth")?,
        taxo_min_node: r.get_usize("config.taxo_min_node")?,
        use_aggregation: r.get_bool("config.use_aggregation")?,
        use_tags: r.get_bool("config.use_tags")?,
        einstein_local: r.get_bool("config.einstein_local")?,
        lr: r.get_f64("config.lr")?,
        lr_tag_mult: r.get_f64("config.lr_tag_mult")?,
        epochs: r.get_usize("config.epochs")?,
        negatives: r.get_usize("config.negatives")?,
        tag_channel_gain: r.get_f64("config.tag_channel_gain")?,
        soft_hinge: r.get_bool("config.soft_hinge")?,
        max_radius: if r.get_bool("config.max_radius presence")? {
            Some(r.get_f64("config.max_radius")?)
        } else {
            None
        },
        hard_negative_pool: r.get_usize("config.hard_negative_pool")?,
        batch_size: r.get_usize("config.batch_size")?,
        seed: r.get_u64("config.seed")?,
    })
}

/// The model's item embeddings viewed as the retrieval crate's input:
/// Lorentz-row matrices with the tag channel present iff it is active.
/// Both index construction and cache rebuilds at load time go through
/// this one view, so they can never disagree about dimensions.
pub(crate) fn item_embeddings(state: &ModelState) -> ItemEmbeddings<'_> {
    let tags = state.tags_active && state.v_tg.rows() > 0;
    ItemEmbeddings {
        v_ir: state.v_ir.data(),
        ambient_ir: state.v_ir.cols(),
        v_tg: if tags { Some(state.v_tg.data()) } else { None },
        ambient_tg: if tags { state.v_tg.cols() } else { 0 },
    }
}

fn write_index(w: &mut Writer, p: &IndexParts) {
    w.put_usize(p.config.max_leaf);
    w.put_usize(p.config.branch);
    w.put_usize(p.config.beam);
    w.put_usize(p.config.kmeans_iters);
    w.put_u64(p.config.seed);
    w.put_usize(p.n_items);
    w.put_usize(p.ambient_ir);
    w.put_usize(p.ambient_tg);
    w.put_u32s(&p.child_lo);
    w.put_u32s(&p.child_hi);
    w.put_u32s(&p.start);
    w.put_u32s(&p.end);
    w.put_u32s(&p.level);
    w.put_u32s(&p.item_ids);
    w.put_f64s(&p.cent_ir);
    w.put_f64s(&p.cent_tg);
    w.put_f64s(&p.radius_ir);
    w.put_f64s(&p.radius_tg);
}

fn read_index(r: &mut Reader) -> Result<IndexParts, CheckpointError> {
    let config = IndexConfig {
        max_leaf: r.get_usize("index config.max_leaf")?,
        branch: r.get_usize("index config.branch")?,
        beam: r.get_usize("index config.beam")?,
        kmeans_iters: r.get_usize("index config.kmeans_iters")?,
        seed: r.get_u64("index config.seed")?,
    };
    Ok(IndexParts {
        config,
        n_items: r.get_usize("index item count")?,
        ambient_ir: r.get_usize("index ir dimension")?,
        ambient_tg: r.get_usize("index tag dimension")?,
        child_lo: r.get_u32s("index child_lo")?,
        child_hi: r.get_u32s("index child_hi")?,
        start: r.get_u32s("index start")?,
        end: r.get_u32s("index end")?,
        level: r.get_u32s("index level")?,
        item_ids: r.get_u32s("index item permutation")?,
        cent_ir: r.get_f64s("index ir centroids")?,
        cent_tg: r.get_f64s("index tag centroids")?,
        radius_ir: r.get_f64s("index ir radii")?,
        radius_tg: r.get_f64s("index tag radii")?,
    })
}

fn write_taxonomy(w: &mut Writer, taxo: &Taxonomy) {
    let nodes = taxo.nodes();
    w.put_usize(nodes.len());
    for node in nodes {
        w.put_u32s(&node.tags);
        w.put_u32s(&node.retained);
        w.put_f64s(&node.scores);
        w.put_usize(node.children.len());
        for &c in &node.children {
            w.put_usize(c);
        }
        match node.parent {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                w.put_usize(p);
            }
        }
        w.put_usize(node.level);
    }
}

fn read_taxonomy(r: &mut Reader) -> Result<Taxonomy, CheckpointError> {
    let n = r.get_len(1, "taxonomy node count")?;
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let what = format!("taxonomy node {i}");
        let tags = r.get_u32s(&what)?;
        let retained = r.get_u32s(&what)?;
        let scores = r.get_f64s(&what)?;
        let n_children = r.get_len(8, &what)?;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(r.get_usize(&what)?);
        }
        let parent = if r.get_bool(&what)? {
            Some(r.get_usize(&what)?)
        } else {
            None
        };
        let level = r.get_usize(&what)?;
        nodes.push(TaxoNode {
            tags,
            retained,
            scores,
            children,
            parent,
            level,
        });
    }
    Taxonomy::from_nodes(nodes).map_err(CheckpointError::Invalid)
}
