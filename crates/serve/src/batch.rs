//! The micro-batching scheduler: a bounded request channel drained by a
//! scorer pool into user-blocks.
//!
//! The hot-path kernels (DESIGN.md §12) are fastest on 32-user fused
//! blocks, but an HTTP front end naturally produces one request at a
//! time. This module closes the gap with the classic batching bargain:
//! requests enqueue into a bounded channel; each scorer thread takes the
//! oldest waiting request and then gathers more — up to
//! [`BatchOptions::max_batch`] — until the **batching deadline**
//! (measured from the *first* request's enqueue instant) expires, so a
//! lone request is never stalled longer than the deadline and a burst is
//! coalesced into one fused-kernel pass. The production shape follows
//! Chamberlain et al.'s "Scalable Hyperbolic Recommender Systems"
//! offline-train / online-batch-serve split.
//!
//! The scheduler is generic over the request type `R` and the response
//! type `S`; the serving tier instantiates it with parsed `/recommend`
//! requests (carrying their connection) and body/status responses, and
//! the property tests instantiate it with plain values to drive
//! arbitrary arrival interleavings through the assembler.
//!
//! ## Guarantees
//!
//! * **No request is dropped or duplicated** — every submitted request
//!   is completed exactly once, including at shutdown (the queue is
//!   drained, not discarded) and when the batch handler panics (each
//!   request in the doomed batch gets the `fallback` response).
//! * **No cross-wiring** — responses are matched to requests by
//!   position within the batch; the handler contract (`Vec<S>` of
//!   exactly the batch's length, same order) is checked, and a handler
//!   that breaks it fails the whole batch to `fallback` rather than
//!   mis-delivering.
//! * **Bounded queue wait** — a request either enters a batch within
//!   `deadline` of the batch's first member (plus scheduling noise and
//!   the service time of batches ahead of it) or was never admitted:
//!   [`Batcher::try_submit`] refuses at capacity so the caller can shed
//!   load with `503 + Retry-After` instead of queueing unboundedly.
//! * **Panic isolation** — a panicking batch fails only its own
//!   requests (`serve.batch.panics`); the scorer thread lives on. The
//!   `serve.batch` fault site makes this deterministically testable
//!   (`panic@serve.batch`, `stall@serve.batch`).
//!
//! ## Telemetry
//!
//! `serve.batch.size` (histogram, requests per formed batch),
//! `serve.batch.wait_ms` (histogram, per-request queue wait),
//! `serve.batch.queue.depth` (gauge), `serve.batch.batches` /
//! `serve.batch.requests` / `serve.batch.shed` / `serve.batch.panics`
//! (counters).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle poll interval while waiting for the first request of a batch
/// (bounds shutdown latency; wakes normally arrive via the condvar).
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Tuning knobs for the [`Batcher`]. [`BatchOptions::from_env`] reads
/// the `TAXOREC_SERVE_BATCH_*` / `TAXOREC_SERVE_SCORERS` variables;
/// [`Default`] ignores the environment.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Most requests coalesced into one scoring batch. 32 matches the
    /// fused-kernel block size (DESIGN.md §12).
    /// Env: `TAXOREC_SERVE_BATCH_MAX`.
    pub max_batch: usize,
    /// How long a forming batch waits for more requests, measured from
    /// its first request's enqueue instant. A lone request is scored at
    /// most this long after arriving.
    /// Env: `TAXOREC_SERVE_BATCH_DEADLINE_US` (microseconds).
    pub deadline: Duration,
    /// Requests allowed to wait in the batch queue; beyond this
    /// [`Batcher::try_submit`] refuses and the caller sheds load.
    /// Env: `TAXOREC_SERVE_BATCH_QUEUE`.
    pub queue_capacity: usize,
    /// Scorer threads draining the queue.
    /// Env: `TAXOREC_SERVE_SCORERS`.
    pub n_scorers: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            max_batch: 32,
            deadline: Duration::from_millis(2),
            queue_capacity: 1024,
            n_scorers: 2,
        }
    }
}

impl BatchOptions {
    /// Defaults overridden by `TAXOREC_SERVE_BATCH_MAX`,
    /// `TAXOREC_SERVE_BATCH_DEADLINE_US`, `TAXOREC_SERVE_BATCH_QUEUE`,
    /// and `TAXOREC_SERVE_SCORERS` where set and parseable.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Some(b) = env_usize("TAXOREC_SERVE_BATCH_MAX") {
            o.max_batch = b.clamp(1, 1024);
        }
        if let Some(us) = env_usize("TAXOREC_SERVE_BATCH_DEADLINE_US") {
            o.deadline = Duration::from_micros(us as u64);
        }
        if let Some(q) = env_usize("TAXOREC_SERVE_BATCH_QUEUE") {
            o.queue_capacity = q.max(1);
        }
        if let Some(s) = env_usize("TAXOREC_SERVE_SCORERS") {
            o.n_scorers = s.clamp(1, 64);
        }
        o
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A request waiting in (or drained from) the batch queue, with the
/// instant it entered — the batching deadline and the queue-wait
/// telemetry are both measured from `enqueued`.
pub struct BatchJob<R> {
    /// The submitted request.
    pub req: R,
    /// When [`Batcher::try_submit`] accepted it.
    pub enqueued: Instant,
}

struct BatchShared<R> {
    queue: Mutex<VecDeque<BatchJob<R>>>,
    ready: Condvar,
    shutdown: AtomicBool,
    opts: BatchOptions,
}

fn lock_queue<R>(
    q: &Mutex<VecDeque<BatchJob<R>>>,
) -> std::sync::MutexGuard<'_, VecDeque<BatchJob<R>>> {
    // Scorer panics are caught around the handler, never while holding
    // the queue lock, but a poisoned queue must not wedge the pipeline.
    q.lock().unwrap_or_else(|e| e.into_inner())
}

/// The micro-batching scheduler: bounded queue + scorer pool. See the
/// module docs for the guarantees.
pub struct Batcher<R: Send + 'static> {
    shared: Arc<BatchShared<R>>,
    scorers: Mutex<Vec<JoinHandle<()>>>,
}

impl<R: Send + 'static> Batcher<R> {
    /// Spawns the scorer pool.
    ///
    /// * `handler` scores one assembled batch; it must return exactly
    ///   one `S` per job, in batch order.
    /// * `fallback` synthesizes the response for every job of a batch
    ///   whose handler panicked (or broke the length contract).
    /// * `complete` delivers each `(request, response)` pair — exactly
    ///   once per submitted request, from a scorer thread.
    ///
    /// Scorer threads that fail to spawn are skipped; the second element
    /// of the returned pair is the number actually running (callers
    /// surface `< n_scorers` as degraded health). Zero is an error.
    pub fn spawn<S, H, F, C>(
        opts: BatchOptions,
        handler: H,
        fallback: F,
        complete: C,
    ) -> std::io::Result<(Self, usize)>
    where
        S: Send + 'static,
        H: Fn(&[BatchJob<R>]) -> Vec<S> + Send + Sync + 'static,
        F: Fn(&BatchJob<R>) -> S + Send + Sync + 'static,
        C: Fn(R, S) + Send + Sync + 'static,
    {
        let shared = Arc::new(BatchShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            opts,
        });
        let stages: Arc<(H, F, C)> = Arc::new((handler, fallback, complete));
        let n = shared.opts.n_scorers.max(1);
        let mut scorers = Vec::with_capacity(n);
        let mut last_err = None;
        for i in 0..n {
            let shared = Arc::clone(&shared);
            let stages = Arc::clone(&stages);
            match std::thread::Builder::new()
                .name(format!("taxorec-scorer-{i}"))
                .spawn(move || scorer_loop(&shared, &stages))
            {
                Ok(h) => scorers.push(h),
                Err(e) => {
                    taxorec_telemetry::counter("serve.scorer.spawn_failed").inc(1);
                    taxorec_telemetry::sink::warn(&format!(
                        "failed to spawn scorer {i}: {e}; continuing with fewer"
                    ));
                    last_err = Some(e);
                }
            }
        }
        if scorers.is_empty() {
            return Err(
                last_err.unwrap_or_else(|| std::io::Error::other("no scorers could be spawned"))
            );
        }
        let spawned = scorers.len();
        Ok((
            Self {
                shared,
                scorers: Mutex::new(scorers),
            },
            spawned,
        ))
    }

    /// Enqueues a request, or returns it when the queue is at capacity
    /// (or the batcher is shutting down) so the caller can shed load.
    pub fn try_submit(&self, req: R) -> Result<(), R> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(req);
        }
        let mut q = lock_queue(&self.shared.queue);
        if q.len() >= self.shared.opts.queue_capacity {
            drop(q);
            taxorec_telemetry::counter("serve.batch.shed").inc(1);
            return Err(req);
        }
        q.push_back(BatchJob {
            req,
            enqueued: Instant::now(),
        });
        taxorec_telemetry::gauge("serve.batch.queue.depth").set(q.len() as f64);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Requests currently waiting (not yet drained into a batch).
    pub fn queue_depth(&self) -> usize {
        lock_queue(&self.shared.queue).len()
    }

    /// The configured queue bound.
    pub fn capacity(&self) -> usize {
        self.shared.opts.queue_capacity
    }

    /// The configured options.
    pub fn options(&self) -> &BatchOptions {
        &self.shared.opts
    }

    /// Stops accepting work, drains every queued request through the
    /// scorers, and joins the pool. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        let handles: Vec<_> = self
            .scorers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<R: Send + 'static> Drop for Batcher<R> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One scorer: assemble a batch (first job + gather until full or the
/// deadline from the first job's enqueue), score it with panic
/// isolation, fan the responses out.
fn scorer_loop<R, S, H, F, C>(shared: &BatchShared<R>, stages: &(H, F, C))
where
    R: Send + 'static,
    S: Send + 'static,
    H: Fn(&[BatchJob<R>]) -> Vec<S>,
    F: Fn(&BatchJob<R>) -> S,
    C: Fn(R, S),
{
    let (handler, fallback, complete) = stages;
    loop {
        // Phase 1: block until a first request (or drained shutdown).
        let first = {
            let mut q = lock_queue(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(q, IDLE_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        // Phase 2: gather until the batch is full or the deadline —
        // anchored at the *first* request's enqueue, so a request that
        // already waited its deadline in a backlog is scored immediately.
        let mut batch = Vec::with_capacity(shared.opts.max_batch);
        batch.push(first);
        let deadline_at = batch[0].enqueued + shared.opts.deadline;
        {
            let mut q = lock_queue(&shared.queue);
            loop {
                while batch.len() < shared.opts.max_batch {
                    match q.pop_front() {
                        Some(j) => batch.push(j),
                        None => break,
                    }
                }
                if batch.len() >= shared.opts.max_batch || shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let now = Instant::now();
                let Some(wait) = deadline_at
                    .checked_duration_since(now)
                    .filter(|w| !w.is_zero())
                else {
                    break;
                };
                let (guard, _) = shared
                    .ready
                    .wait_timeout(q, wait)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            taxorec_telemetry::gauge("serve.batch.queue.depth").set(q.len() as f64);
        }
        // Phase 3: score with panic isolation and per-batch telemetry.
        let formed = Instant::now();
        taxorec_telemetry::histogram("serve.batch.size").observe(batch.len() as f64);
        taxorec_telemetry::counter("serve.batch.batches").inc(1);
        taxorec_telemetry::counter("serve.batch.requests").inc(batch.len() as u64);
        let wait_hist = taxorec_telemetry::histogram("serve.batch.wait_ms");
        for j in &batch {
            wait_hist.observe(formed.saturating_duration_since(j.enqueued).as_secs_f64() * 1e3);
        }
        let scored = catch_unwind(AssertUnwindSafe(|| {
            // Deterministic failure hook: `panic@serve.batch` dooms this
            // batch (and only it); `stall@serve.batch` wedges the scorer
            // so backpressure and shedding are observable in tests.
            taxorec_resilience::inject_panic_or_stall("serve.batch");
            handler(&batch)
        }));
        // Phase 4: fan out — exactly one completion per request, even
        // when the handler panicked or broke the length contract.
        match scored {
            Ok(responses) if responses.len() == batch.len() => {
                for (job, resp) in batch.into_iter().zip(responses) {
                    complete(job.req, resp);
                }
            }
            outcome => {
                taxorec_telemetry::counter("serve.batch.panics").inc(1);
                taxorec_telemetry::sink::warn(match outcome {
                    Ok(_) => {
                        "batch handler broke the one-response-per-request contract; \
                              failing the batch"
                    }
                    Err(_) => "batch handler panicked; failing only this batch",
                });
                for job in batch {
                    let resp = fallback(&job);
                    complete(job.req, resp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(completed: &Mutex<Vec<(u32, String)>>, n: usize) -> Vec<(u32, String)> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            {
                let got = completed.lock().unwrap();
                if got.len() >= n {
                    return got.clone();
                }
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for completions"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn every_request_completes_exactly_once_with_its_own_response() {
        let completed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&completed);
        let (batcher, spawned) = Batcher::spawn(
            BatchOptions {
                max_batch: 4,
                deadline: Duration::from_millis(5),
                queue_capacity: 1024,
                n_scorers: 2,
            },
            |jobs: &[BatchJob<u32>]| jobs.iter().map(|j| format!("r{}", j.req)).collect(),
            |_job| "fallback".to_string(),
            move |req, resp: String| sink.lock().unwrap().push((req, resp)),
        )
        .expect("spawn");
        assert_eq!(spawned, 2);
        for i in 0..100u32 {
            batcher.try_submit(i).expect("submit");
        }
        let got = drain_all(&completed, 100);
        assert_eq!(got.len(), 100, "no drops, no duplicates");
        let mut seen: Vec<u32> = got.iter().map(|(r, _)| *r).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        for (req, resp) in &got {
            assert_eq!(resp, &format!("r{req}"), "no cross-wiring");
        }
        batcher.shutdown();
    }

    #[test]
    fn queue_capacity_refuses_instead_of_growing() {
        // No scorers can drain while the handler is stalled on the gate.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate_h = Arc::clone(&gate);
        let completed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&completed);
        let (batcher, _) = Batcher::spawn(
            BatchOptions {
                max_batch: 1,
                deadline: Duration::ZERO,
                queue_capacity: 2,
                n_scorers: 1,
            },
            move |jobs: &[BatchJob<u32>]| {
                let (open, cv) = &*gate_h;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                jobs.iter().map(|j| format!("r{}", j.req)).collect()
            },
            |_job| "fallback".to_string(),
            move |req, resp: String| sink.lock().unwrap().push((req, resp)),
        )
        .expect("spawn");
        // First submit is grabbed by the (now blocked) scorer; the next
        // two fill the queue; the fourth must be refused.
        batcher.try_submit(0).expect("scored");
        let deadline = Instant::now() + Duration::from_secs(5);
        while batcher.queue_depth() != 0 {
            assert!(Instant::now() < deadline, "scorer never took the first job");
            std::thread::sleep(Duration::from_millis(1));
        }
        batcher.try_submit(1).expect("queued");
        batcher.try_submit(2).expect("queued");
        let refused = batcher.try_submit(3);
        assert_eq!(refused, Err(3), "at capacity: shed, don't queue");
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        let got = drain_all(&completed, 3);
        assert_eq!(got.len(), 3);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let completed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&completed);
        let (batcher, _) = Batcher::spawn(
            BatchOptions {
                max_batch: 8,
                deadline: Duration::from_millis(50),
                queue_capacity: 1024,
                n_scorers: 1,
            },
            |jobs: &[BatchJob<u32>]| jobs.iter().map(|j| format!("r{}", j.req)).collect(),
            |_job| "fallback".to_string(),
            move |req, resp: String| sink.lock().unwrap().push((req, resp)),
        )
        .expect("spawn");
        for i in 0..20u32 {
            batcher.try_submit(i).expect("submit");
        }
        batcher.shutdown();
        let got = completed.lock().unwrap();
        assert_eq!(got.len(), 20, "shutdown drained, not dropped");
    }

    #[test]
    fn lone_request_is_released_by_the_deadline_not_a_full_batch() {
        let completed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&completed);
        let (batcher, _) = Batcher::spawn(
            BatchOptions {
                max_batch: 32, // would never fill
                deadline: Duration::from_millis(20),
                queue_capacity: 16,
                n_scorers: 1,
            },
            |jobs: &[BatchJob<u32>]| jobs.iter().map(|j| format!("r{}", j.req)).collect(),
            |_job| "fallback".to_string(),
            move |req, resp: String| sink.lock().unwrap().push((req, resp)),
        )
        .expect("spawn");
        batcher.try_submit(7).expect("submit");
        let got = drain_all(&completed, 1);
        assert_eq!(got[0], (7, "r7".to_string()));
        batcher.shutdown();
    }
}
