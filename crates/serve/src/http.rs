//! A minimal std-only HTTP/1.1 front end for [`ServingModel`].
//!
//! No async runtime and no HTTP crate: an event-driven pipeline of small
//! thread pools, one request per connection (`Connection: close`),
//! graceful shutdown through an `AtomicBool`. That is all a
//! latency-tolerant model server needs, and it keeps the crate
//! dependency-free.
//!
//! ## The pipeline (DESIGN.md §14)
//!
//! ```text
//! acceptor → conn queue → parser workers → batch queue → scorer pool
//!                              │ (cache hits, /healthz, …)     │
//!                              └──────────→ inline response    └→ responder pool
//! ```
//!
//! The acceptor enqueues raw connections into a bounded queue; parser
//! workers read and route them. Endpoints other than `/recommend` — and
//! `/recommend` cache **hits** — are answered inline by the parser
//! worker. Cache misses become [`RecommendReq`]s submitted to the
//! [`Batcher`]: scorer threads coalesce up to
//! [`BatchOptions::max_batch`] requests (bounded by the batching
//! deadline, so a lone request is never stalled) and score the block in
//! one fused [`ServingModel::recommend_many`] pass — **bit-identical**
//! to the single-request path. Completed requests fan out to a responder
//! pool that owns the socket writes, so a slow-reading client can only
//! ever occupy a parser worker or a responder — never a scorer.
//!
//! Endpoints (`GET` unless noted):
//!
//! | Path            | Query                | Response                                   |
//! |-----------------|----------------------|--------------------------------------------|
//! | `/recommend`    | `user=<id>&k=<n>`    | top-K items with scores (JSON)             |
//! | `/explain`      | `user=<id>&item=<id>`| score + tag/taxonomy rationale (JSON)      |
//! | `POST /ingest`  | JSON body            | `202` + journal position ([`serve_online`])|
//! | `/healthz`      | —                    | readiness + model card (JSON)              |
//! | `/metrics`      | —                    | Prometheus text exposition 0.0.4           |
//! | `/metrics.json` | —                    | `taxorec-telemetry` registry snapshot      |
//! | `/debug/flight` | —                    | flight-recorder ring contents (JSON)       |
//!
//! ## Observability
//!
//! A [`TraceContext`] is minted for every accepted connection — before
//! queueing, so queue wait is part of the trace — and echoed back in an
//! `x-taxorec-trace` response header on **every** response (including
//! `400`s and shed `503`s). When `TAXOREC_TRACE` is set and the request
//! falls on the sampling stride, the request exports a connected span
//! tree: `http` (root) → `queue` / `cache` / `score` → `kernel` /
//! `respond`. Request outcomes also land in the flight recorder
//! (`serve.request` events), which dumps its ring to disk on handler
//! panics and load shedding.
//!
//! ## Hardening
//!
//! * **Deadlines** — every accepted connection gets read/write timeouts
//!   ([`ServeOptions::io_timeout`]); a stalled or trickling client is
//!   disconnected instead of pinning a worker forever.
//! * **Size caps** — request heads over
//!   [`ServeOptions::max_request_bytes`] are rejected with `400`.
//! * **Load shedding** — when the connection queue is full the acceptor
//!   answers `503` with a `Retry-After` header immediately rather than
//!   letting the backlog grow without bound (`serve.http.shed`).
//! * **Panic isolation** — each request handler runs under
//!   `catch_unwind`; a panicking request gets a `500` and the worker
//!   lives on (`serve.http.panics`). The `serve.request` fault site makes
//!   this deterministically testable.
//! * **Degraded spawn** — if some worker threads fail to spawn the
//!   server runs with the ones it got and `/healthz` reports
//!   `"degraded"`; only zero workers is fatal.
//!
//! `/healthz` reports `"ready"`, `"degraded"` (reduced worker pool), or
//! `"draining"` (shutdown in progress). Every request lands in the
//! `serve.http.requests` counter and a per-endpoint latency histogram
//! (`serve.http.<endpoint>.ms`).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use taxorec_telemetry::json::{push_f64, push_str_escaped};
use taxorec_telemetry::{flight, flight_event, trace, TraceContext};

use crate::batch::{BatchJob, BatchOptions, Batcher};
use crate::checkpoint::{write_atomic, ArtifactInfo, Checkpoint, FORMAT_VERSION};
use crate::model::{ModelSlot, Ranking, ServeError, ServingModel};
use crate::online::{self, IngestOptions, Journal};

const JSON_CONTENT_TYPE: &str = "application/json";

/// Parser-worker condvar poll interval (shutdown-flag recheck bound).
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Per-read deadline while draining a shed connection's request bytes.
/// Bounds how long one rejection can occupy the thread that sheds it.
const SHED_DRAIN_TIMEOUT: Duration = Duration::from_millis(5);
/// Drain reads attempted per shed before the socket drops regardless.
const SHED_DRAIN_READS: usize = 8;
/// Default `k` when `/recommend` omits it.
const DEFAULT_K: usize = 10;
/// Upper bound on `k` per request (keeps a typo from ranking the world).
const MAX_K: usize = 1000;

/// Tuning knobs for [`serve_with`]. [`ServeOptions::from_env`] reads the
/// `TAXOREC_SERVE_*` variables; [`Default`] ignores the environment.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling requests (≥ 1 enforced).
    /// Env: `TAXOREC_SERVE_WORKERS`.
    pub n_workers: usize,
    /// Per-connection read/write deadline. A client that stalls longer
    /// than this mid-request is disconnected.
    /// Env: `TAXOREC_SERVE_TIMEOUT_MS`.
    pub io_timeout: Duration,
    /// Largest request head (request line + headers) accepted.
    /// Env: `TAXOREC_SERVE_MAX_REQUEST_BYTES`.
    pub max_request_bytes: usize,
    /// Accepted connections allowed to wait for a worker; beyond this the
    /// acceptor sheds load with `503 + Retry-After`.
    /// Env: `TAXOREC_SERVE_MAX_QUEUE`.
    pub max_queue: usize,
    /// Micro-batching scheduler knobs (`TAXOREC_SERVE_BATCH_*`,
    /// `TAXOREC_SERVE_SCORERS`).
    pub batch: BatchOptions,
    /// Responder threads writing completed batched responses back to
    /// their sockets (≥ 1 enforced).
    /// Env: `TAXOREC_SERVE_RESPONDERS`.
    pub n_responders: usize,
    /// Shard identity reported by `/healthz` (`"shard":{"id":…}`), so a
    /// router aggregating a fleet can tell which process answered.
    /// Env: `TAXOREC_SHARD_ID`.
    pub shard_id: Option<String>,
    /// Enables the `/admin/drain` and `/admin/reload` endpoints (warm
    /// checkpoint reload and router-observable draining). On by
    /// default; set `TAXOREC_SERVE_ADMIN=0` to disable on an exposed
    /// listener.
    pub admin: bool,
    /// Streaming-ingestion tuning (`TAXOREC_INGEST_*`). Only honored by
    /// [`serve_online`]; plain [`serve_with`] answers `POST /ingest`
    /// with `503`.
    pub ingest: IngestOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            n_workers: 4,
            io_timeout: Duration::from_secs(5),
            max_request_bytes: 16 * 1024,
            max_queue: 64,
            batch: BatchOptions::default(),
            n_responders: 2,
            shard_id: None,
            admin: true,
            ingest: IngestOptions::default(),
        }
    }
}

impl ServeOptions {
    /// Defaults overridden by `TAXOREC_SERVE_WORKERS`,
    /// `TAXOREC_SERVE_TIMEOUT_MS`, `TAXOREC_SERVE_MAX_REQUEST_BYTES`,
    /// `TAXOREC_SERVE_MAX_QUEUE`, `TAXOREC_SERVE_RESPONDERS`, and the
    /// `TAXOREC_SERVE_BATCH_*` / `TAXOREC_SERVE_SCORERS` family where
    /// set and parseable.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Some(w) = env_usize("TAXOREC_SERVE_WORKERS") {
            o.n_workers = w.clamp(1, 64);
        }
        if let Some(ms) = env_usize("TAXOREC_SERVE_TIMEOUT_MS") {
            o.io_timeout = Duration::from_millis(ms.max(1) as u64);
        }
        if let Some(b) = env_usize("TAXOREC_SERVE_MAX_REQUEST_BYTES") {
            o.max_request_bytes = b.max(64);
        }
        if let Some(q) = env_usize("TAXOREC_SERVE_MAX_QUEUE") {
            o.max_queue = q.max(1);
        }
        if let Some(r) = env_usize("TAXOREC_SERVE_RESPONDERS") {
            o.n_responders = r.clamp(1, 64);
        }
        if let Ok(id) = std::env::var("TAXOREC_SHARD_ID") {
            let id = id.trim().to_string();
            if !id.is_empty() {
                o.shard_id = Some(id);
            }
        }
        if let Ok(v) = std::env::var("TAXOREC_SERVE_ADMIN") {
            o.admin = v.trim() != "0";
        }
        o.batch = BatchOptions::from_env();
        o.ingest = IngestOptions::from_env();
        o
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Server readiness, surfaced through `/healthz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Full worker pool, accepting traffic.
    Ready,
    /// Serving, but with fewer workers than requested (spawn failures).
    Degraded,
    /// Shutdown requested; draining in-flight work.
    Draining,
}

impl Health {
    fn as_str(self) -> &'static str {
        match self {
            Self::Ready => "ready",
            Self::Degraded => "degraded",
            Self::Draining => "draining",
        }
    }
}

const HEALTH_READY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_DRAINING: u8 = 2;

/// An accepted connection waiting for a worker, carrying the trace
/// context minted at accept time (so queue wait is inside the trace).
struct Queued {
    stream: TcpStream,
    ctx: TraceContext,
    accepted: Instant,
}

/// A parsed `/recommend` cache miss travelling through the batching
/// pipeline with its connection: handed from the parser worker to the
/// [`Batcher`], scored in a block, and written by a responder.
struct RecommendReq {
    stream: TcpStream,
    ctx: TraceContext,
    /// Connection accept instant (root-span start).
    accepted: Instant,
    /// Head-read completion instant (endpoint-latency start, matching
    /// the inline path's histogram semantics).
    started: Instant,
    user: u32,
    k: usize,
}

/// Outcome of scoring one batched request, written by a responder.
enum Scored {
    /// 200 with the ranked items.
    Ranked(Ranking),
    /// 404 — unknown user (same mapping as the inline path).
    NotFound(String),
    /// 500 — this request's batch panicked; only its own batch fails.
    Internal,
}

/// Work queue feeding the responder pool. Unbounded on purpose: every
/// entry is a completed request whose admission was already bounded by
/// the connection and batch queues, so refusing here could only drop a
/// scored response.
struct ResponderShared {
    queue: Mutex<VecDeque<(RecommendReq, Scored)>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl ResponderShared {
    fn push(&self, req: RecommendReq, scored: Scored) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back((req, scored));
        drop(q);
        self.ready.notify_one();
    }
}

fn responder_loop(shared: &ResponderShared) {
    loop {
        let item = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(it) = q.pop_front() {
                    break Some(it);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(q, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match item {
            Some((req, scored)) => write_recommend_response(req, scored),
            None => return,
        }
    }
}

/// The batching stages behind the parser workers: scheduler + responder
/// queue. Shared so `/healthz` can report batch-queue occupancy.
struct Pipeline {
    batcher: Batcher<RecommendReq>,
    responders: Arc<ResponderShared>,
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    shutdown: AtomicBool,
    health: AtomicU8,
    queue: Mutex<VecDeque<Queued>>,
    ready: Condvar,
    opts: ServeOptions,
    /// Serializes `/admin/reload`: one checkpoint handover at a time.
    reload: Mutex<()>,
    /// The streaming-interaction journal behind `POST /ingest`; `None`
    /// on servers started without [`serve_online`].
    journal: Option<Arc<Journal>>,
}

impl Shared {
    fn health(&self) -> Health {
        match self.health.load(Ordering::SeqCst) {
            HEALTH_DEGRADED => Health::Degraded,
            HEALTH_DRAINING => Health::Draining,
            _ => Health::Ready,
        }
    }
}

/// A running server: joinable acceptor, parser, scorer, and responder
/// threads plus shared shutdown/health state.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    pipeline: Arc<Pipeline>,
    responder_threads: Vec<JoinHandle<()>>,
    slot: Arc<ModelSlot>,
}

impl ServerHandle {
    /// The address actually bound (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once [`ServerHandle::shutdown`] has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Current readiness as reported by `/healthz`.
    pub fn health(&self) -> Health {
        self.shared.health()
    }

    /// The hot-swappable model slot behind this server (warm reload).
    pub fn model_slot(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.slot)
    }

    /// Marks the server `draining` on `/healthz` **without** stopping
    /// it: every endpoint keeps answering, but a health-aware router
    /// stops routing new traffic here. This is the first phase of a
    /// graceful (SIGTERM-driven) restart — advertise the drain, give
    /// the router a probe interval to route around this shard, then
    /// call [`ServerHandle::shutdown`] to finish in-flight work.
    pub fn set_draining(&self) {
        self.shared.health.store(HEALTH_DRAINING, Ordering::SeqCst);
    }

    /// Signals the pipeline to stop and waits for in-flight requests
    /// (and already-queued connections) to drain.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn begin_shutdown(&self) {
        self.shared.health.store(HEALTH_DRAINING, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        // The acceptor blocks in `accept`; a throwaway loopback
        // connection wakes it so it can observe the shutdown flag.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }

    /// Stage-ordered drain: acceptor + parser workers first (no new
    /// submissions), then the batcher (scores every queued request),
    /// then the responders (every scored response is written). Each
    /// stage's queue is empty before the next stage stops.
    fn drain(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.pipeline.batcher.shutdown();
        self.pipeline
            .responders
            .shutdown
            .store(true, Ordering::SeqCst);
        self.pipeline.responders.ready.notify_all();
        for t in self.responder_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `model` on `n_workers` threads with environment-tuned hardening
/// options until the handle is shut down or dropped.
pub fn serve(
    model: Arc<ServingModel>,
    addr: &str,
    n_workers: usize,
) -> std::io::Result<ServerHandle> {
    serve_with(
        model,
        addr,
        ServeOptions {
            n_workers,
            ..ServeOptions::from_env()
        },
    )
}

/// [`serve`] with explicit [`ServeOptions`].
///
/// Worker threads that fail to spawn are logged and skipped — the server
/// starts with whatever pool it got, reporting `"degraded"` health.
/// Only a total spawn failure (zero workers) is an error.
pub fn serve_with(
    model: Arc<ServingModel>,
    addr: &str,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    serve_impl(model, addr, opts, None)
}

/// [`serve_with`] plus streaming ingestion (DESIGN.md §17): accepts
/// `POST /ingest` into a bounded journal and runs the incremental-update
/// loop, which folds journaled interactions into `base` between ticks
/// and swaps the refreshed model into the slot — the same handover path
/// as `/admin/reload`.
///
/// `base` must be the checkpoint `model` was built from: it becomes the
/// updater's master copy, and its `journal_cursor` seeds the journal so
/// a restart from a persisted streaming artifact resumes its cursor.
pub fn serve_online(
    model: Arc<ServingModel>,
    base: Checkpoint,
    addr: &str,
    mut opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    opts.ingest.enabled = true;
    serve_impl(model, addr, opts, Some(base))
}

fn serve_impl(
    model: Arc<ServingModel>,
    addr: &str,
    opts: ServeOptions,
    online_base: Option<Checkpoint>,
) -> std::io::Result<ServerHandle> {
    // The acceptor blocks in `accept` — zero added latency per
    // connection, no poll interval to overflow the kernel backlog at
    // high arrival rates. Shutdown wakes it with a loopback connection
    // to the listener itself (`begin_shutdown`).
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let n_requested = opts.n_workers.max(1);
    let batch_opts = opts.batch.clone();
    let n_responders = opts.n_responders.max(1);
    let journal = online_base.as_ref().map(|base| {
        Arc::new(Journal::new(
            opts.ingest.journal_cap,
            base.journal_cursor.unwrap_or(0),
        ))
    });
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        health: AtomicU8::new(HEALTH_READY),
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        opts,
        reload: Mutex::new(()),
        journal,
    });
    let slot = Arc::new(ModelSlot::new(model));
    let mut degraded = false;

    // Responder pool: owns all socket writes for batched responses.
    let responders = Arc::new(ResponderShared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });
    let mut responder_threads = Vec::with_capacity(n_responders);
    let mut last_err: Option<std::io::Error> = None;
    for i in 0..n_responders {
        let responders = Arc::clone(&responders);
        match std::thread::Builder::new()
            .name(format!("taxorec-respond-{i}"))
            .spawn(move || responder_loop(&responders))
        {
            Ok(h) => responder_threads.push(h),
            Err(e) => {
                taxorec_telemetry::counter("serve.responder.spawn_failed").inc(1);
                taxorec_telemetry::sink::warn(&format!(
                    "failed to spawn responder {i}: {e}; continuing with fewer"
                ));
                last_err = Some(e);
            }
        }
    }
    if responder_threads.is_empty() {
        return Err(
            last_err.unwrap_or_else(|| std::io::Error::other("no responders could be spawned"))
        );
    }
    degraded |= responder_threads.len() < n_responders;

    // Scorer pool behind the bounded batch queue. The handler scores one
    // assembled block through the fused multi-anchor path and stamps the
    // retroactive per-request `batch.wait` / `score` spans; a panicking
    // batch falls back to 500s for only its own requests. The model is
    // resolved through the slot per batch, so a warm reload takes
    // effect from the next assembled block on.
    let scoring_slot = Arc::clone(&slot);
    let complete_to = Arc::clone(&responders);
    let (batcher, live_scorers) = Batcher::spawn(
        batch_opts.clone(),
        move |jobs: &[BatchJob<RecommendReq>]| {
            let started = Instant::now();
            let queries: Vec<(u32, usize)> = jobs.iter().map(|j| (j.req.user, j.req.k)).collect();
            let results = scoring_slot.load().recommend_many(&queries);
            let finished = Instant::now();
            for j in jobs {
                trace::emit_span_at("batch.wait", j.req.ctx, j.enqueued, started);
                trace::emit_span_at("score", j.req.ctx, started, finished);
            }
            results
                .into_iter()
                .map(|r| match r {
                    Ok(items) => Scored::Ranked(items),
                    Err(e) => Scored::NotFound(e.to_string()),
                })
                .collect()
        },
        |_job| Scored::Internal,
        move |req, scored| complete_to.push(req, scored),
    )?;
    degraded |= live_scorers < batch_opts.n_scorers.max(1);
    let pipeline = Arc::new(Pipeline {
        batcher,
        responders: Arc::clone(&responders),
    });

    let mut threads = Vec::with_capacity(n_requested + 1);
    let mut spawned = 0usize;
    for i in 0..n_requested {
        let shared = Arc::clone(&shared);
        let slot = Arc::clone(&slot);
        let pipeline = Arc::clone(&pipeline);
        // Deterministic worker loss for the health-transition tests:
        // `TAXOREC_FAULT=io@serve.spawn:2` makes exactly the second
        // worker fail to spawn, driving `/healthz` to `degraded`.
        if let Some(msg) = taxorec_resilience::inject_io("serve.spawn") {
            taxorec_telemetry::counter("serve.worker.spawn_failed").inc(1);
            taxorec_telemetry::sink::warn(&format!(
                "failed to spawn server worker {i}: {msg}; continuing with fewer workers"
            ));
            last_err = Some(std::io::Error::other(msg));
            continue;
        }
        match std::thread::Builder::new()
            .name(format!("taxorec-serve-{i}"))
            .spawn(move || worker_loop(&shared, &slot, &pipeline))
        {
            Ok(h) => {
                threads.push(h);
                spawned += 1;
            }
            Err(e) => {
                taxorec_telemetry::counter("serve.worker.spawn_failed").inc(1);
                taxorec_telemetry::sink::warn(&format!(
                    "failed to spawn server worker {i}: {e}; continuing with fewer workers"
                ));
                last_err = Some(e);
            }
        }
    }
    if spawned == 0 {
        return Err(
            last_err.unwrap_or_else(|| std::io::Error::other("no server workers could be spawned"))
        );
    }
    degraded |= spawned < n_requested;
    if degraded {
        shared.health.store(HEALTH_DEGRADED, Ordering::SeqCst);
        taxorec_telemetry::sink::warn(&format!(
            "serving degraded: {spawned}/{n_requested} workers, {live_scorers} scorers, \
             {} responders",
            responder_threads.len()
        ));
    }
    {
        let shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("taxorec-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?;
        threads.push(acceptor);
    }
    if let Some(base) = online_base {
        let shared = Arc::clone(&shared);
        let slot = Arc::clone(&slot);
        let updater = std::thread::Builder::new()
            .name("taxorec-ingest".to_string())
            .spawn(move || updater_loop(base, &shared, &slot))?;
        threads.push(updater);
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
        pipeline,
        responder_threads,
        slot,
    })
}

/// Accepts connections into the bounded queue, shedding with `503` when
/// it is full.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // The shutdown wake-up is itself a connection; re-check
                // the flag before treating it as traffic.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(shared.opts.io_timeout));
                let _ = stream.set_write_timeout(Some(shared.opts.io_timeout));
                // Trace identity is minted here, at the system edge, so
                // even shed responses carry an `x-taxorec-trace` header
                // and queue wait is covered by the trace.
                let ctx = trace::mint();
                let mut q = lock_queue(&shared.queue);
                if q.len() >= shared.opts.max_queue {
                    let depth = q.len();
                    drop(q);
                    shed(&mut stream, ctx, depth, shared.opts.io_timeout);
                    continue;
                }
                q.push_back(Queued {
                    stream,
                    ctx,
                    accepted: Instant::now(),
                });
                taxorec_telemetry::gauge("serve.queue.depth").set(q.len() as f64);
                drop(q);
                shared.ready.notify_one();
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    shared.ready.notify_all();
}

/// Rejects an over-capacity connection with `503 + Retry-After` without
/// parsing the request (the write deadline bounds even this). The
/// incident is recorded in the flight ring and triggers a (throttled)
/// dump — a shed storm is exactly the moment the recent-event history
/// matters.
///
/// After the 503 is written the connection is *lingering-closed*: the
/// unparsed request bytes are drained (briefly, bounded) before the
/// socket drops. Closing with unread data in the receive buffer makes
/// the kernel send `RST`, which destroys the in-flight 503 — under a
/// shed storm every rejection would then surface client-side as a
/// connection reset instead of the `Retry-After` it was sent.
fn shed(stream: &mut TcpStream, ctx: TraceContext, queue_depth: usize, io_timeout: Duration) {
    taxorec_telemetry::counter("serve.http.shed").inc(1);
    flight_event!("serve.shed", ctx.trace_id, queue_depth as i64, 0.0);
    flight::dump("serve.shed");
    let retry_after = io_timeout.as_secs().max(1);
    let _ = respond_with(
        stream,
        503,
        ctx.trace_id,
        JSON_CONTENT_TYPE,
        &format!("Retry-After: {retry_after}\r\n"),
        &error_json("server overloaded; retry later"),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(SHED_DRAIN_TIMEOUT));
    let mut scratch = [0u8; 1024];
    for _ in 0..SHED_DRAIN_READS {
        match stream.read(&mut scratch) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

/// Poison-tolerant queue lock: a worker that panicked while holding the
/// lock (can't happen in the current code, but belts and braces) must not
/// wedge the acceptor.
fn lock_queue(q: &Mutex<VecDeque<Queued>>) -> std::sync::MutexGuard<'_, VecDeque<Queued>> {
    q.lock().unwrap_or_else(|e| e.into_inner())
}

/// The incremental-update loop ([`serve_online`]): every tick, drain up
/// to a batch of journaled interactions, fold them into the master
/// checkpoint ([`online::fold_batch`]), reseal the artifact identity,
/// optionally persist it, and swap a freshly built [`ServingModel`]
/// into the slot. The swap is the `/admin/reload` handover — one `Arc`
/// exchange, response cache starting cold.
fn updater_loop(mut ckpt: Checkpoint, shared: &Shared, slot: &Arc<ModelSlot>) {
    let Some(journal) = shared.journal.as_ref() else {
        return;
    };
    let opts = shared.opts.ingest.clone();
    // Graft-drift counter, threaded through every fold so chunked
    // ticking stays bit-identical to one whole-journal replay.
    let mut drift = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let tick_start = Instant::now();
        while tick_start.elapsed() < opts.tick {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(POLL_INTERVAL.min(opts.tick));
        }
        let batch = journal.drain(opts.batch);
        taxorec_telemetry::gauge("serve.ingest.staleness").set(journal.staleness() as f64);
        if batch.is_empty() {
            continue;
        }
        update_tick(&mut ckpt, &batch, &opts, &mut drift, slot, journal);
    }
}

/// One updater tick: fold, reseal, persist, rebuild, swap.
fn update_tick(
    ckpt: &mut Checkpoint,
    batch: &[online::IngestInteraction],
    opts: &IngestOptions,
    drift: &mut u64,
    slot: &Arc<ModelSlot>,
    journal: &Journal,
) {
    let started = Instant::now();
    // Fold against a restorable snapshot: a mid-batch error leaves the
    // checkpoint holding a partially applied prefix whose journal
    // cursor was never advanced, so rolling back state *and* drift
    // together is the only way cursor and embeddings stay consistent —
    // otherwise a restart would resume replay against desynced state,
    // silently breaking the bit-identical replay guarantee.
    let snapshot = (ckpt.clone(), *drift);
    let report = match online::fold_batch(ckpt, batch, opts, drift) {
        Ok(r) => r,
        Err(e) => {
            (*ckpt, *drift) = snapshot;
            taxorec_telemetry::counter("serve.ingest.fold_errors").inc(1);
            taxorec_telemetry::sink::warn(&format!(
                "ingest: folding {} interactions failed: {e}; batch dropped",
                batch.len()
            ));
            journal.mark_applied(batch.len() as u64);
            return;
        }
    };
    // Reseal the artifact identity so `/healthz` (and a persisted copy)
    // advertise the streamed generation, not the boot-time artifact.
    let bytes = ckpt.to_bytes();
    let crc_at = bytes.len() - 4;
    let crc = u32::from_le_bytes([
        bytes[crc_at],
        bytes[crc_at + 1],
        bytes[crc_at + 2],
        bytes[crc_at + 3],
    ]);
    ckpt.artifact = Some(ArtifactInfo {
        version: FORMAT_VERSION,
        crc,
        bytes: bytes.len() as u64,
    });
    if let Some(path) = &opts.checkpoint_path {
        if let Err(e) = write_atomic(path, &bytes) {
            taxorec_telemetry::counter("serve.ingest.persist_errors").inc(1);
            taxorec_telemetry::sink::warn(&format!(
                "ingest: persisting {} failed: {e}; serving continues unpersisted",
                path.display()
            ));
        }
    }
    let old = slot.load();
    let built = ServingModel::with_cache_capacity(ckpt.clone(), old.cache_usage().1)
        .and_then(|m| m.with_retrieval(old.retrieval_mode()));
    match built {
        Ok(model) => {
            slot.swap(Arc::new(model));
            taxorec_telemetry::counter("serve.ingest.swaps").inc(1);
        }
        Err(e) => {
            taxorec_telemetry::counter("serve.ingest.swap_failed").inc(1);
            taxorec_telemetry::sink::warn(&format!(
                "ingest: building the refreshed model failed: {e}; keeping current model"
            ));
        }
    }
    journal.mark_applied(batch.len() as u64);
    taxorec_telemetry::gauge("serve.ingest.cursor").set(report.cursor as f64);
    taxorec_telemetry::gauge("serve.ingest.drift").set(*drift as f64);
    taxorec_telemetry::gauge("serve.ingest.staleness").set(journal.staleness() as f64);
    taxorec_telemetry::histogram("serve.ingest.tick.ms")
        .observe(started.elapsed().as_secs_f64() * 1e3);
}

fn worker_loop(shared: &Shared, slot: &Arc<ModelSlot>, pipeline: &Pipeline) {
    loop {
        let queued = {
            let mut q = lock_queue(&shared.queue);
            loop {
                if let Some(s) = q.pop_front() {
                    taxorec_telemetry::gauge("serve.queue.depth").set(q.len() as f64);
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .ready
                    .wait_timeout(q, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match queued {
            Some(s) => handle_connection(s, shared, slot, pipeline),
            None => return,
        }
    }
}

/// Adopts an inbound `x-taxorec-trace` header (the router hop): the
/// request joins the caller's trace instead of starting a fresh one, so
/// one user query traces as one tree across router and shard. Span ids
/// and the local sampling decision are kept — only the trace identity
/// is inherited.
fn adopt_trace(head: &str, ctx: TraceContext) -> TraceContext {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("x-taxorec-trace") {
                if let Ok(id) = u64::from_str_radix(value.trim(), 16) {
                    if id != 0 {
                        return TraceContext {
                            trace_id: id,
                            ..ctx
                        };
                    }
                }
            }
        }
    }
    ctx
}

fn handle_connection(queued: Queued, shared: &Shared, slot: &Arc<ModelSlot>, pipeline: &Pipeline) {
    let Queued {
        mut stream,
        ctx,
        accepted,
    } = queued;
    let dequeued = Instant::now();
    let head = match read_head(&mut stream, shared.opts.max_request_bytes) {
        Some(h) => h,
        None => {
            trace::emit_span_at("queue", ctx, accepted, dequeued);
            let _ = respond(
                &mut stream,
                400,
                ctx.trace_id,
                &error_json("malformed, oversized, or timed-out request"),
            );
            return;
        }
    };
    // Join the caller's trace when the request came through the router
    // (`x-taxorec-trace` header), then emit the accept→dequeue wait as a
    // retroactive child span under the adopted identity.
    let ctx = adopt_trace(&head, ctx);
    trace::emit_span_at("queue", ctx, accepted, dequeued);
    // Everything below runs with `ctx` ambient, so `child_span` calls in
    // the serving model (cache, score, kernel) parent into this request.
    let _trace_scope = trace::scope(ctx);
    taxorec_telemetry::counter("serve.http.requests").inc(1);
    let start = Instant::now();
    // The model is resolved from the slot *per request*, after the head
    // is read — a connection that was accepted (or kept open) before an
    // `/admin/reload` or ingest swap must still be answered by the
    // model that is current when its request actually arrives, never by
    // the generation that happened to be live at accept time.
    let model = slot.load();
    let model = model.as_ref();
    // Panic isolation: one poisonous request must not take the worker
    // (let alone the process) down with it. The `serve.request` fault
    // site makes this path deterministically testable.
    let routed = catch_unwind(AssertUnwindSafe(|| {
        // `panic@serve.request` exercises panic isolation;
        // `stall@serve.request` wedges the worker mid-request, which is
        // how the router's hedging is driven deterministically.
        taxorec_resilience::inject_panic_or_stall("serve.request");
        if let Some(rest) = head.strip_prefix("POST ") {
            if rest
                .split_whitespace()
                .next()
                .map(|t| t.split('?').next().unwrap_or(t))
                == Some("/ingest")
            {
                let (status, body, extra) = handle_ingest(&head, &mut stream, shared);
                return Routed::Ingest(status, body, extra);
            }
        }
        route(&head, shared, model, slot, pipeline)
    }));
    let (status, body, endpoint, content_type, extra_headers) = match routed {
        Ok(Routed::Done(status, body, endpoint, content_type)) => {
            (status, body, endpoint, content_type, String::new())
        }
        Ok(Routed::Ingest(status, body, extra)) => {
            (status, body, "ingest", JSON_CONTENT_TYPE, extra)
        }
        Ok(Routed::Batch { user, k }) => {
            // A `/recommend` cache miss: hand the connection to the
            // batching pipeline. The responder pool owns everything from
            // here (response write, latency histogram, root span) — this
            // worker is immediately free for the next connection.
            let req = RecommendReq {
                stream,
                ctx,
                accepted,
                started: start,
                user,
                k,
            };
            if let Err(mut req) = pipeline.batcher.try_submit(req) {
                // Batch queue full (or draining): shed exactly like the
                // connection queue does, before any scoring work.
                shed(
                    &mut req.stream,
                    ctx,
                    pipeline.batcher.queue_depth(),
                    shared.opts.io_timeout,
                );
                taxorec_telemetry::counter("serve.http.recommend.errors").inc(1);
            }
            return;
        }
        Err(_) => {
            taxorec_telemetry::counter("serve.http.panics").inc(1);
            taxorec_telemetry::sink::warn("request handler panicked; worker continues");
            // Dump *before* responding so the dump file exists by the
            // time the client sees the 500.
            flight_event!("serve.panic", ctx.trace_id, 500, 0.0);
            flight::dump("serve.request.panic");
            (
                500,
                error_json("internal error"),
                "other",
                JSON_CONTENT_TYPE,
                String::new(),
            )
        }
    };
    {
        let _respond_span = trace::child_span("respond");
        let _ = respond_with(
            &mut stream,
            status,
            ctx.trace_id,
            content_type,
            &extra_headers,
            &body,
        );
    }
    // Covers routing (the model work) plus the response write, so the
    // histogram reflects what a client observes.
    let ms = start.elapsed().as_secs_f64() * 1e3;
    taxorec_telemetry::histogram(&format!("serve.http.{endpoint}.ms")).observe(ms);
    taxorec_telemetry::counter(&format!("serve.http.{endpoint}.requests")).inc(1);
    if status >= 400 {
        taxorec_telemetry::counter(&format!("serve.http.{endpoint}.errors")).inc(1);
    }
    flight_event!("serve.request", ctx.trace_id, status as i64, ms);
    // The root span covers accept → response written; emitted last so
    // the whole tree is buffered once the request is externally visible.
    trace::emit_root_at("http", ctx, accepted, Instant::now());
}

/// Writes one batched `/recommend` response from a responder thread and
/// closes out the request's telemetry: endpoint histogram/counters,
/// flight event, retroactive `respond` span, and the `http` root span —
/// the batched twin of the inline path's epilogue in
/// [`handle_connection`].
fn write_recommend_response(mut req: RecommendReq, scored: Scored) {
    let (status, body) = match scored {
        Scored::Ranked(items) => (200, recommend_body(req.user, req.k, &items)),
        Scored::NotFound(msg) => (404, error_json(&msg)),
        Scored::Internal => {
            // Dump before responding, mirroring the inline panic path.
            flight_event!("serve.panic", req.ctx.trace_id, 500, 0.0);
            flight::dump("serve.batch.panic");
            (500, error_json("internal error"))
        }
    };
    let write_start = Instant::now();
    let _ = respond(&mut req.stream, status, req.ctx.trace_id, &body);
    trace::emit_span_at("respond", req.ctx, write_start, Instant::now());
    let ms = req.started.elapsed().as_secs_f64() * 1e3;
    taxorec_telemetry::histogram("serve.http.recommend.ms").observe(ms);
    taxorec_telemetry::counter("serve.http.recommend.requests").inc(1);
    if status >= 400 {
        taxorec_telemetry::counter("serve.http.recommend.errors").inc(1);
    }
    flight_event!("serve.request", req.ctx.trace_id, status as i64, ms);
    trace::emit_root_at("http", req.ctx, req.accepted, Instant::now());
}

/// Reads bytes until the end of the request head (`\r\n\r\n`) and returns
/// the head as text. `None` on malformed, oversized, or timed-out input.
pub(crate) fn read_head(stream: &mut TcpStream, max_bytes: usize) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= max_bytes {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    if buf.len() >= max_bytes {
        return None;
    }
    String::from_utf8(buf).ok()
}

/// What the router decided about one parsed request.
enum Routed {
    /// Answer now from the parser worker: (status, body, endpoint label
    /// for telemetry, content type).
    Done(u16, String, &'static str, &'static str),
    /// A `POST /ingest` already handled (body consumed from the
    /// stream): (status, body, extra response headers — `Retry-After`
    /// on journal backpressure).
    Ingest(u16, String, String),
    /// A `/recommend` cache miss bound for the batching pipeline.
    Batch {
        /// Validated `user` query parameter.
        user: u32,
        /// Validated `k` (defaulted and bounds-checked).
        k: usize,
    },
}

/// Dispatches one parsed request. Everything except a `/recommend`
/// cache miss resolves inline.
fn route(
    head: &str,
    shared: &Shared,
    model: &ServingModel,
    slot: &Arc<ModelSlot>,
    pipeline: &Pipeline,
) -> Routed {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return Routed::Done(
            405,
            error_json(&format!("method {method:?} not allowed; use GET")),
            "other",
            JSON_CONTENT_TYPE,
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => Routed::Done(
            200,
            healthz_json(shared, model, pipeline),
            "healthz",
            JSON_CONTENT_TYPE,
        ),
        "/metrics" => Routed::Done(
            200,
            taxorec_telemetry::prometheus::render(),
            "metrics",
            taxorec_telemetry::prometheus::CONTENT_TYPE,
        ),
        "/metrics.json" => Routed::Done(
            200,
            taxorec_telemetry::snapshot(),
            "metrics",
            JSON_CONTENT_TYPE,
        ),
        "/debug/flight" => Routed::Done(200, flight::snapshot_json(), "flight", JSON_CONTENT_TYPE),
        "/admin/drain" if shared.opts.admin => {
            shared.health.store(HEALTH_DRAINING, Ordering::SeqCst);
            taxorec_telemetry::counter("serve.admin.drain").inc(1);
            Routed::Done(
                200,
                "{\"status\":\"draining\"}".to_string(),
                "admin",
                JSON_CONTENT_TYPE,
            )
        }
        "/admin/reload" if shared.opts.admin => {
            let (status, body) = handle_reload(query, shared, slot);
            Routed::Done(status, body, "admin", JSON_CONTENT_TYPE)
        }
        "/ingest" => Routed::Done(
            405,
            error_json("use POST /ingest with a JSON interaction batch"),
            "ingest",
            JSON_CONTENT_TYPE,
        ),
        "/recommend" => handle_recommend(query, model),
        "/explain" => {
            let (status, body, ep) = handle_explain(query, model);
            Routed::Done(status, body, ep, JSON_CONTENT_TYPE)
        }
        _ => Routed::Done(
            404,
            error_json(&format!("no route for {path:?}")),
            "other",
            JSON_CONTENT_TYPE,
        ),
    }
}

/// Validates a `/recommend` query and probes the response cache. Hits
/// (and rejects) resolve inline on the parser worker — a cached answer
/// never pays batching latency; misses go to the scheduler. Unknown
/// users also take the batched path and come back as per-request `404`s
/// from [`ServingModel::recommend_many`]'s independent error entries.
fn handle_recommend(query: &str, model: &ServingModel) -> Routed {
    let user = match require_param(query, "user") {
        Ok(u) => u,
        Err(msg) => return Routed::Done(400, error_json(&msg), "recommend", JSON_CONTENT_TYPE),
    };
    let k = match param(query, "k") {
        None => DEFAULT_K,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k <= MAX_K => k,
            Ok(k) => {
                return Routed::Done(
                    400,
                    error_json(&format!("k = {k} exceeds the maximum of {MAX_K}")),
                    "recommend",
                    JSON_CONTENT_TYPE,
                )
            }
            Err(_) => {
                return Routed::Done(
                    400,
                    error_json(&format!("query parameter 'k' = {raw:?} is not an integer")),
                    "recommend",
                    JSON_CONTENT_TYPE,
                )
            }
        },
    };
    match model.cached(user, k) {
        Some(items) => Routed::Done(
            200,
            recommend_body(user, k, &items),
            "recommend",
            JSON_CONTENT_TYPE,
        ),
        None => Routed::Batch { user, k },
    }
}

/// The `/recommend` success body — one builder for the inline (cache
/// hit) and batched paths, so both emit byte-identical JSON.
fn recommend_body(user: u32, k: usize, items: &[(u32, f64)]) -> String {
    let mut body = String::with_capacity(32 + items.len() * 32);
    body.push_str("{\"user\":");
    body.push_str(&user.to_string());
    body.push_str(",\"k\":");
    body.push_str(&k.to_string());
    body.push_str(",\"items\":[");
    for (i, &(item, score)) in items.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"item\":");
        body.push_str(&item.to_string());
        body.push_str(",\"score\":");
        push_f64(&mut body, score);
        body.push('}');
    }
    body.push_str("]}");
    body
}

fn handle_explain(query: &str, model: &ServingModel) -> (u16, String, &'static str) {
    let user = match require_param(query, "user") {
        Ok(u) => u,
        Err(msg) => return (400, error_json(&msg), "explain"),
    };
    let item = match require_param(query, "item") {
        Ok(v) => v,
        Err(msg) => return (400, error_json(&msg), "explain"),
    };
    match model.explain(user, item) {
        Ok(ex) => {
            let mut body = String::with_capacity(128);
            body.push_str("{\"user\":");
            body.push_str(&ex.user.to_string());
            body.push_str(",\"item\":");
            body.push_str(&ex.item.to_string());
            body.push_str(",\"score\":");
            push_f64(&mut body, ex.score);
            body.push_str(",\"alpha\":");
            push_f64(&mut body, ex.alpha);
            body.push_str(",\"item_tags\":[");
            for (i, t) in ex.item_tags.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str("{\"tag\":");
                body.push_str(&t.tag.to_string());
                body.push_str(",\"name\":");
                push_str_escaped(&mut body, &t.name);
                body.push_str(",\"distance\":");
                push_f64(&mut body, t.distance);
                body.push('}');
            }
            body.push_str("],\"node_level\":");
            match ex.node_level {
                Some(l) => body.push_str(&l.to_string()),
                None => body.push_str("null"),
            }
            body.push_str(",\"node_tags\":[");
            for (i, name) in ex.node_tags.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                push_str_escaped(&mut body, name);
            }
            body.push_str("]}");
            (200, body, "explain")
        }
        Err(e @ ServeError::UnknownUser { .. }) | Err(e @ ServeError::UnknownItem { .. }) => {
            (404, error_json(&e.to_string()), "explain")
        }
    }
}

/// `POST /ingest` — reads the JSON interaction batch off the stream and
/// appends it to the journal. Returns `(status, body, extra headers)`:
/// `202` with the journal position on acceptance, `503 + Retry-After`
/// (one tick) when the journal is full, `503` when ingestion is off.
/// The body is *accepted*, not folded — the updater applies it on the
/// next tick, and `/healthz`'s `ingest.staleness` tracks the gap.
fn handle_ingest(head: &str, stream: &mut TcpStream, shared: &Shared) -> (u16, String, String) {
    let none = String::new;
    let Some(journal) = shared.journal.as_ref() else {
        return (
            503,
            error_json("ingestion is not enabled; start with serve --ingest"),
            none(),
        );
    };
    let opts = &shared.opts.ingest;
    let mut content_length: Option<usize> = None;
    for line in head.lines().skip(1) {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let Some(expected) = content_length else {
        return (
            400,
            error_json("POST /ingest requires a Content-Length header"),
            none(),
        );
    };
    if expected > opts.max_body {
        return (
            413,
            error_json(&format!(
                "body of {expected} bytes exceeds the {} byte ingest limit",
                opts.max_body
            )),
            none(),
        );
    }
    // `read_head` may have over-read into the body; start from whatever
    // followed the blank line and pull the rest off the socket.
    let prefix = head.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let mut raw = prefix.as_bytes().to_vec();
    let mut chunk = [0u8; 4096];
    while raw.len() < expected {
        let want = (expected - raw.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => {
                return (
                    400,
                    error_json("timed out reading the request body"),
                    none(),
                )
            }
        }
    }
    if raw.len() < expected {
        return (
            400,
            error_json("request body ended before Content-Length bytes"),
            none(),
        );
    }
    raw.truncate(expected);
    let Ok(body) = String::from_utf8(raw) else {
        return (400, error_json("request body is not valid UTF-8"), none());
    };
    let batch = match online::parse_ingest_body(&body) {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e), none()),
    };
    let n = batch.len();
    match journal.push_batch(batch) {
        Ok(_) => (
            202,
            format!(
                "{{\"accepted\":{n},\"queued\":{},\"staleness\":{}}}",
                journal.len(),
                journal.staleness()
            ),
            none(),
        ),
        Err(depth) => {
            taxorec_telemetry::counter("serve.ingest.rejected").inc(1);
            let retry_after = opts.tick.as_secs().max(1);
            (
                503,
                error_json(&format!(
                    "ingest journal full ({depth}/{} queued); retry after the next tick",
                    journal.capacity()
                )),
                format!("Retry-After: {retry_after}\r\n"),
            )
        }
    }
}

/// `{"version":…,"crc":…,"bytes":…}` for a loaded artifact, `null` for
/// an in-process model that never touched disk.
fn artifact_json(info: Option<crate::checkpoint::ArtifactInfo>) -> String {
    match info {
        None => "null".to_string(),
        Some(info) => format!(
            "{{\"version\":{},\"crc\":{},\"bytes\":{}}}",
            info.version, info.crc, info.bytes
        ),
    }
}

/// `GET /admin/reload?path=P` — warm checkpoint handover. The new
/// `.taxo` is read, validated, and built into a fresh [`ServingModel`]
/// (inheriting the live model's retrieval mode and cache capacity)
/// **before** the slot swap, so requests keep being answered by the old
/// model for the whole load; the swap itself is one `Arc` exchange.
/// While the handover is in progress `/healthz` reports `draining` so a
/// fronting router prefers replicas; the prior health state is restored
/// on completion — including on failure, which keeps the old model and
/// answers `500`.
fn handle_reload(query: &str, shared: &Shared, slot: &Arc<ModelSlot>) -> (u16, String) {
    let path = match require_param_str(query, "path") {
        Ok(p) => p,
        Err(msg) => return (400, error_json(&msg)),
    };
    // One handover at a time: concurrent reloads would race the
    // health save/restore and could swap models out of order.
    let _serialized = shared.reload.lock().unwrap_or_else(|e| e.into_inner());
    let old = slot.load();
    let prior_health = shared.health.load(Ordering::SeqCst);
    shared.health.store(HEALTH_DRAINING, Ordering::SeqCst);
    let started = Instant::now();
    let built = Checkpoint::load_file(path)
        .and_then(|ckpt| ServingModel::with_cache_capacity(ckpt, old.cache_usage().1))
        .and_then(|m| m.with_retrieval(old.retrieval_mode()));
    let (status, body) = match built {
        Ok(new_model) => {
            let new_info = artifact_json(new_model.artifact_info());
            let replaced = slot.swap(Arc::new(new_model));
            taxorec_telemetry::counter("serve.admin.reload").inc(1);
            taxorec_telemetry::histogram("serve.admin.reload.ms")
                .observe(started.elapsed().as_secs_f64() * 1e3);
            taxorec_telemetry::sink::info(&format!("checkpoint reloaded from {path:?}"));
            (
                200,
                format!(
                    "{{\"status\":\"reloaded\",\"path\":{},\"old\":{},\"new\":{}}}",
                    {
                        let mut s = String::new();
                        push_str_escaped(&mut s, path);
                        s
                    },
                    artifact_json(replaced.artifact_info()),
                    new_info,
                ),
            )
        }
        Err(e) => {
            taxorec_telemetry::counter("serve.admin.reload.errors").inc(1);
            taxorec_telemetry::sink::warn(&format!(
                "checkpoint reload from {path:?} failed: {e}; keeping current model"
            ));
            (500, error_json(&format!("reload failed: {e}")))
        }
    };
    shared.health.store(prior_health, Ordering::SeqCst);
    (status, body)
}

fn healthz_json(shared: &Shared, model: &ServingModel, pipeline: &Pipeline) -> String {
    let (cache_len, cache_cap) = model.cache_usage();
    let queued = lock_queue(&shared.queue).len();
    let mut body = String::with_capacity(224);
    body.push_str("{\"status\":\"");
    body.push_str(shared.health().as_str());
    body.push_str("\",\"shard\":{\"id\":");
    match &shared.opts.shard_id {
        Some(id) => push_str_escaped(&mut body, id),
        None => body.push_str("null"),
    }
    body.push_str(",\"checkpoint\":");
    body.push_str(&artifact_json(model.artifact_info()));
    body.push_str("},\"model\":");
    push_str_escaped(&mut body, model.name());
    body.push_str(",\"users\":");
    body.push_str(&model.n_users().to_string());
    body.push_str(",\"items\":");
    body.push_str(&model.n_items().to_string());
    body.push_str(",\"tags\":");
    body.push_str(&model.n_tags().to_string());
    body.push_str(",\"queue\":{\"depth\":");
    body.push_str(&queued.to_string());
    body.push_str(",\"capacity\":");
    body.push_str(&shared.opts.max_queue.to_string());
    body.push_str("},\"batch\":{\"depth\":");
    body.push_str(&pipeline.batcher.queue_depth().to_string());
    body.push_str(",\"capacity\":");
    body.push_str(&pipeline.batcher.capacity().to_string());
    body.push_str(",\"max_batch\":");
    body.push_str(&pipeline.batcher.options().max_batch.to_string());
    body.push_str("},\"cache\":{\"entries\":");
    body.push_str(&cache_len.to_string());
    body.push_str(",\"capacity\":");
    body.push_str(&cache_cap.to_string());
    body.push_str("},\"retrieval\":{\"mode\":\"");
    body.push_str(&model.retrieval_mode().label());
    body.push_str("\",\"index\":");
    match model.retrieval_index() {
        None => body.push_str("null"),
        Some(index) => {
            body.push_str("{\"nodes\":");
            body.push_str(&index.n_nodes().to_string());
            body.push_str(",\"leaves\":");
            body.push_str(&index.n_leaves().to_string());
            body.push_str(",\"depth\":");
            body.push_str(&index.depth().to_string());
            body.push_str(",\"default_beam\":");
            body.push_str(&index.default_beam().to_string());
            body.push('}');
        }
    }
    body.push_str("},\"ingest\":");
    match shared.journal.as_ref() {
        None => body.push_str("null"),
        Some(j) => {
            body.push_str("{\"accepted\":");
            body.push_str(&j.accepted().to_string());
            body.push_str(",\"applied\":");
            body.push_str(&j.applied().to_string());
            body.push_str(",\"staleness\":");
            body.push_str(&j.staleness().to_string());
            body.push_str(",\"queued\":");
            body.push_str(&j.len().to_string());
            body.push_str(",\"capacity\":");
            body.push_str(&j.capacity().to_string());
            body.push_str(",\"cursor\":");
            match model.journal_cursor() {
                Some(c) => body.push_str(&c.to_string()),
                None => body.push_str("null"),
            }
            body.push('}');
        }
    }
    body.push('}');
    body
}

pub(crate) fn error_json(message: &str) -> String {
    let mut body = String::with_capacity(message.len() + 12);
    body.push_str("{\"error\":");
    push_str_escaped(&mut body, message);
    body.push('}');
    body
}

/// Value of `name` in an `a=1&b=2` query string, if present.
pub(crate) fn param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

/// Like [`require_param`] but returns the raw string value (for
/// `/admin/reload?path=…`, which takes a filesystem path).
fn require_param_str<'q>(query: &'q str, name: &str) -> Result<&'q str, String> {
    param(query, name).ok_or_else(|| format!("missing required query parameter '{name}'"))
}

pub(crate) fn require_param(query: &str, name: &str) -> Result<u32, String> {
    match param(query, name) {
        None => Err(format!("missing required query parameter '{name}'")),
        Some(raw) => raw.parse::<u32>().map_err(|_| {
            format!("query parameter '{name}' = {raw:?} is not a non-negative integer")
        }),
    }
}

pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    trace_id: u64,
    body: &str,
) -> std::io::Result<()> {
    respond_with(stream, status, trace_id, JSON_CONTENT_TYPE, "", body)
}

pub(crate) fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    trace_id: u64,
    content_type: &str,
    extra_headers: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nx-taxorec-trace: {trace_id:016x}\r\n\
         {extra_headers}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_parsing() {
        assert_eq!(param("user=3&k=5", "user"), Some("3"));
        assert_eq!(param("user=3&k=5", "k"), Some("5"));
        assert_eq!(param("user=3", "k"), None);
        assert_eq!(param("", "user"), None);
        assert_eq!(require_param("user=7", "user"), Ok(7));
        assert!(require_param("user=-1", "user")
            .unwrap_err()
            .contains("non-negative"));
        assert!(require_param("k=5", "user").unwrap_err().contains("user"));
    }

    #[test]
    fn error_json_escapes() {
        let j = error_json("bad \"quote\"");
        assert_eq!(j, "{\"error\":\"bad \\\"quote\\\"\"}");
        assert!(taxorec_telemetry::json::is_valid_json(&j));
    }

    #[test]
    fn health_state_strings() {
        assert_eq!(Health::Ready.as_str(), "ready");
        assert_eq!(Health::Degraded.as_str(), "degraded");
        assert_eq!(Health::Draining.as_str(), "draining");
    }

    #[test]
    fn serve_options_defaults_are_sane() {
        let o = ServeOptions::default();
        assert!(o.n_workers >= 1);
        assert!(o.max_queue >= 1);
        assert!(o.io_timeout > Duration::ZERO);
        assert!(o.max_request_bytes >= 1024);
    }
}
