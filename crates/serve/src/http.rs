//! A minimal std-only HTTP/1.1 front end for [`ServingModel`].
//!
//! No async runtime and no HTTP crate: a nonblocking `TcpListener`
//! polled by a small pool of worker threads, one request per connection
//! (`Connection: close`), graceful shutdown through an `AtomicBool`.
//! That is all a latency-tolerant model server needs, and it keeps the
//! crate dependency-free.
//!
//! Endpoints (all `GET`, all JSON):
//!
//! | Path         | Query                | Response                                   |
//! |--------------|----------------------|--------------------------------------------|
//! | `/recommend` | `user=<id>&k=<n>`    | top-K items with scores                    |
//! | `/explain`   | `user=<id>&item=<id>`| score + tag/taxonomy rationale             |
//! | `/healthz`   | —                    | liveness + model card                      |
//! | `/metrics`   | —                    | `taxorec-telemetry` registry snapshot      |
//!
//! Every request lands in the `serve.http.requests` counter and a
//! per-endpoint latency histogram (`serve.http.<endpoint>.ms`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use taxorec_telemetry::json::{push_f64, push_str_escaped};

use crate::model::{ServeError, ServingModel};

/// Largest request head (request line + headers) we accept.
const MAX_REQUEST_BYTES: usize = 16 * 1024;
/// How long an accepted connection may dawdle before we give up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-loop poll interval while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Default `k` when `/recommend` omits it.
const DEFAULT_K: usize = 10;
/// Upper bound on `k` per request (keeps a typo from ranking the world).
const MAX_K: usize = 1000;

/// A running server: joinable worker threads plus a shutdown flag.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once [`ServerHandle::shutdown`] has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Signals the workers to stop accepting and waits for in-flight
    /// requests to drain (each worker finishes its current response
    /// before exiting).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `model` on `n_workers` threads until the handle is shut down or
/// dropped.
pub fn serve(
    model: Arc<ServingModel>,
    addr: &str,
    n_workers: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let listener = Arc::new(listener);
    let n_workers = n_workers.max(1);
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let listener = Arc::clone(&listener);
        let shutdown = Arc::clone(&shutdown);
        let model = Arc::clone(&model);
        workers.push(
            std::thread::Builder::new()
                .name(format!("taxorec-serve-{i}"))
                .spawn(move || worker_loop(&listener, &shutdown, &model))
                .expect("spawn server worker"),
        );
    }
    Ok(ServerHandle {
        addr,
        shutdown,
        workers,
    })
}

fn worker_loop(listener: &TcpListener, shutdown: &AtomicBool, model: &ServingModel) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                handle_connection(stream, model);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, model: &ServingModel) {
    let head = match read_head(&mut stream) {
        Some(h) => h,
        None => {
            let _ = respond(
                &mut stream,
                400,
                &error_json("malformed or oversized request"),
            );
            return;
        }
    };
    taxorec_telemetry::counter("serve.http.requests").inc(1);
    let start = Instant::now();
    let (status, body, endpoint) = route(&head, model);
    let _ = respond(&mut stream, status, &body);
    // Covers routing (the model work) plus the response write, so the
    // histogram reflects what a client observes.
    let ms = start.elapsed().as_secs_f64() * 1e3;
    taxorec_telemetry::histogram(&format!("serve.http.{endpoint}.ms")).observe(ms);
}

/// Reads bytes until the end of the request head (`\r\n\r\n`) and returns
/// the head as text. `None` on malformed, oversized, or timed-out input.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    if buf.len() >= MAX_REQUEST_BYTES {
        return None;
    }
    String::from_utf8(buf).ok()
}

/// Dispatches one parsed request; returns (status, JSON body, endpoint
/// label for telemetry).
fn route(head: &str, model: &ServingModel) -> (u16, String, &'static str) {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            405,
            error_json(&format!("method {method:?} not allowed; use GET")),
            "other",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => (200, healthz_json(model), "healthz"),
        "/metrics" => (200, taxorec_telemetry::snapshot(), "metrics"),
        "/recommend" => handle_recommend(query, model),
        "/explain" => handle_explain(query, model),
        _ => (404, error_json(&format!("no route for {path:?}")), "other"),
    }
}

fn handle_recommend(query: &str, model: &ServingModel) -> (u16, String, &'static str) {
    let user = match require_param(query, "user") {
        Ok(u) => u,
        Err(msg) => return (400, error_json(&msg), "recommend"),
    };
    let k = match param(query, "k") {
        None => DEFAULT_K,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k <= MAX_K => k,
            Ok(k) => {
                return (
                    400,
                    error_json(&format!("k = {k} exceeds the maximum of {MAX_K}")),
                    "recommend",
                )
            }
            Err(_) => {
                return (
                    400,
                    error_json(&format!("query parameter 'k' = {raw:?} is not an integer")),
                    "recommend",
                )
            }
        },
    };
    match model.recommend(user, k) {
        Ok(items) => {
            let mut body = String::with_capacity(32 + items.len() * 32);
            body.push_str("{\"user\":");
            body.push_str(&user.to_string());
            body.push_str(",\"k\":");
            body.push_str(&k.to_string());
            body.push_str(",\"items\":[");
            for (i, &(item, score)) in items.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str("{\"item\":");
                body.push_str(&item.to_string());
                body.push_str(",\"score\":");
                push_f64(&mut body, score);
                body.push('}');
            }
            body.push_str("]}");
            (200, body, "recommend")
        }
        Err(e) => (404, error_json(&e.to_string()), "recommend"),
    }
}

fn handle_explain(query: &str, model: &ServingModel) -> (u16, String, &'static str) {
    let user = match require_param(query, "user") {
        Ok(u) => u,
        Err(msg) => return (400, error_json(&msg), "explain"),
    };
    let item = match require_param(query, "item") {
        Ok(v) => v,
        Err(msg) => return (400, error_json(&msg), "explain"),
    };
    match model.explain(user, item) {
        Ok(ex) => {
            let mut body = String::with_capacity(128);
            body.push_str("{\"user\":");
            body.push_str(&ex.user.to_string());
            body.push_str(",\"item\":");
            body.push_str(&ex.item.to_string());
            body.push_str(",\"score\":");
            push_f64(&mut body, ex.score);
            body.push_str(",\"alpha\":");
            push_f64(&mut body, ex.alpha);
            body.push_str(",\"item_tags\":[");
            for (i, t) in ex.item_tags.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str("{\"tag\":");
                body.push_str(&t.tag.to_string());
                body.push_str(",\"name\":");
                push_str_escaped(&mut body, &t.name);
                body.push_str(",\"distance\":");
                push_f64(&mut body, t.distance);
                body.push('}');
            }
            body.push_str("],\"node_level\":");
            match ex.node_level {
                Some(l) => body.push_str(&l.to_string()),
                None => body.push_str("null"),
            }
            body.push_str(",\"node_tags\":[");
            for (i, name) in ex.node_tags.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                push_str_escaped(&mut body, name);
            }
            body.push_str("]}");
            (200, body, "explain")
        }
        Err(e @ ServeError::UnknownUser { .. }) | Err(e @ ServeError::UnknownItem { .. }) => {
            (404, error_json(&e.to_string()), "explain")
        }
    }
}

fn healthz_json(model: &ServingModel) -> String {
    let (cache_len, cache_cap) = model.cache_usage();
    let mut body = String::with_capacity(128);
    body.push_str("{\"status\":\"ok\",\"model\":");
    push_str_escaped(&mut body, model.name());
    body.push_str(",\"users\":");
    body.push_str(&model.n_users().to_string());
    body.push_str(",\"items\":");
    body.push_str(&model.n_items().to_string());
    body.push_str(",\"tags\":");
    body.push_str(&model.n_tags().to_string());
    body.push_str(",\"cache\":{\"entries\":");
    body.push_str(&cache_len.to_string());
    body.push_str(",\"capacity\":");
    body.push_str(&cache_cap.to_string());
    body.push_str("}}");
    body
}

fn error_json(message: &str) -> String {
    let mut body = String::with_capacity(message.len() + 12);
    body.push_str("{\"error\":");
    push_str_escaped(&mut body, message);
    body.push('}');
    body
}

/// Value of `name` in an `a=1&b=2` query string, if present.
fn param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn require_param(query: &str, name: &str) -> Result<u32, String> {
    match param(query, name) {
        None => Err(format!("missing required query parameter '{name}'")),
        Some(raw) => raw.parse::<u32>().map_err(|_| {
            format!("query parameter '{name}' = {raw:?} is not a non-negative integer")
        }),
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_parsing() {
        assert_eq!(param("user=3&k=5", "user"), Some("3"));
        assert_eq!(param("user=3&k=5", "k"), Some("5"));
        assert_eq!(param("user=3", "k"), None);
        assert_eq!(param("", "user"), None);
        assert_eq!(require_param("user=7", "user"), Ok(7));
        assert!(require_param("user=-1", "user")
            .unwrap_err()
            .contains("non-negative"));
        assert!(require_param("k=5", "user").unwrap_err().contains("user"));
    }

    #[test]
    fn error_json_escapes() {
        let j = error_json("bad \"quote\"");
        assert_eq!(j, "{\"error\":\"bad \\\"quote\\\"\"}");
        assert!(taxorec_telemetry::json::is_valid_json(&j));
    }
}
