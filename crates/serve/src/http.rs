//! A minimal std-only HTTP/1.1 front end for [`ServingModel`].
//!
//! No async runtime and no HTTP crate: a dedicated acceptor thread feeds
//! a **bounded connection queue** drained by a small pool of worker
//! threads, one request per connection (`Connection: close`), graceful
//! shutdown through an `AtomicBool`. That is all a latency-tolerant
//! model server needs, and it keeps the crate dependency-free.
//!
//! Endpoints (all `GET`):
//!
//! | Path            | Query                | Response                                   |
//! |-----------------|----------------------|--------------------------------------------|
//! | `/recommend`    | `user=<id>&k=<n>`    | top-K items with scores (JSON)             |
//! | `/explain`      | `user=<id>&item=<id>`| score + tag/taxonomy rationale (JSON)      |
//! | `/healthz`      | —                    | readiness + model card (JSON)              |
//! | `/metrics`      | —                    | Prometheus text exposition 0.0.4           |
//! | `/metrics.json` | —                    | `taxorec-telemetry` registry snapshot      |
//! | `/debug/flight` | —                    | flight-recorder ring contents (JSON)       |
//!
//! ## Observability
//!
//! A [`TraceContext`] is minted for every accepted connection — before
//! queueing, so queue wait is part of the trace — and echoed back in an
//! `x-taxorec-trace` response header on **every** response (including
//! `400`s and shed `503`s). When `TAXOREC_TRACE` is set and the request
//! falls on the sampling stride, the request exports a connected span
//! tree: `http` (root) → `queue` / `cache` / `score` → `kernel` /
//! `respond`. Request outcomes also land in the flight recorder
//! (`serve.request` events), which dumps its ring to disk on handler
//! panics and load shedding.
//!
//! ## Hardening
//!
//! * **Deadlines** — every accepted connection gets read/write timeouts
//!   ([`ServeOptions::io_timeout`]); a stalled or trickling client is
//!   disconnected instead of pinning a worker forever.
//! * **Size caps** — request heads over
//!   [`ServeOptions::max_request_bytes`] are rejected with `400`.
//! * **Load shedding** — when the connection queue is full the acceptor
//!   answers `503` with a `Retry-After` header immediately rather than
//!   letting the backlog grow without bound (`serve.http.shed`).
//! * **Panic isolation** — each request handler runs under
//!   `catch_unwind`; a panicking request gets a `500` and the worker
//!   lives on (`serve.http.panics`). The `serve.request` fault site makes
//!   this deterministically testable.
//! * **Degraded spawn** — if some worker threads fail to spawn the
//!   server runs with the ones it got and `/healthz` reports
//!   `"degraded"`; only zero workers is fatal.
//!
//! `/healthz` reports `"ready"`, `"degraded"` (reduced worker pool), or
//! `"draining"` (shutdown in progress). Every request lands in the
//! `serve.http.requests` counter and a per-endpoint latency histogram
//! (`serve.http.<endpoint>.ms`).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use taxorec_telemetry::json::{push_f64, push_str_escaped};
use taxorec_telemetry::{flight, flight_event, trace, TraceContext};

use crate::model::{ServeError, ServingModel};

const JSON_CONTENT_TYPE: &str = "application/json";

/// Accept-loop poll interval while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Default `k` when `/recommend` omits it.
const DEFAULT_K: usize = 10;
/// Upper bound on `k` per request (keeps a typo from ranking the world).
const MAX_K: usize = 1000;

/// Tuning knobs for [`serve_with`]. [`ServeOptions::from_env`] reads the
/// `TAXOREC_SERVE_*` variables; [`Default`] ignores the environment.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling requests (≥ 1 enforced).
    pub n_workers: usize,
    /// Per-connection read/write deadline. A client that stalls longer
    /// than this mid-request is disconnected.
    /// Env: `TAXOREC_SERVE_TIMEOUT_MS`.
    pub io_timeout: Duration,
    /// Largest request head (request line + headers) accepted.
    /// Env: `TAXOREC_SERVE_MAX_REQUEST_BYTES`.
    pub max_request_bytes: usize,
    /// Accepted connections allowed to wait for a worker; beyond this the
    /// acceptor sheds load with `503 + Retry-After`.
    /// Env: `TAXOREC_SERVE_MAX_QUEUE`.
    pub max_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            n_workers: 4,
            io_timeout: Duration::from_secs(5),
            max_request_bytes: 16 * 1024,
            max_queue: 64,
        }
    }
}

impl ServeOptions {
    /// Defaults overridden by `TAXOREC_SERVE_TIMEOUT_MS`,
    /// `TAXOREC_SERVE_MAX_REQUEST_BYTES`, and `TAXOREC_SERVE_MAX_QUEUE`
    /// where set and parseable.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Some(ms) = env_usize("TAXOREC_SERVE_TIMEOUT_MS") {
            o.io_timeout = Duration::from_millis(ms.max(1) as u64);
        }
        if let Some(b) = env_usize("TAXOREC_SERVE_MAX_REQUEST_BYTES") {
            o.max_request_bytes = b.max(64);
        }
        if let Some(q) = env_usize("TAXOREC_SERVE_MAX_QUEUE") {
            o.max_queue = q.max(1);
        }
        o
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Server readiness, surfaced through `/healthz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Full worker pool, accepting traffic.
    Ready,
    /// Serving, but with fewer workers than requested (spawn failures).
    Degraded,
    /// Shutdown requested; draining in-flight work.
    Draining,
}

impl Health {
    fn as_str(self) -> &'static str {
        match self {
            Self::Ready => "ready",
            Self::Degraded => "degraded",
            Self::Draining => "draining",
        }
    }
}

const HEALTH_READY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_DRAINING: u8 = 2;

/// An accepted connection waiting for a worker, carrying the trace
/// context minted at accept time (so queue wait is inside the trace).
struct Queued {
    stream: TcpStream,
    ctx: TraceContext,
    accepted: Instant,
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    shutdown: AtomicBool,
    health: AtomicU8,
    queue: Mutex<VecDeque<Queued>>,
    ready: Condvar,
    opts: ServeOptions,
}

impl Shared {
    fn health(&self) -> Health {
        match self.health.load(Ordering::SeqCst) {
            HEALTH_DEGRADED => Health::Degraded,
            HEALTH_DRAINING => Health::Draining,
            _ => Health::Ready,
        }
    }
}

/// A running server: joinable acceptor + worker threads plus shared
/// shutdown/health state.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once [`ServerHandle::shutdown`] has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Current readiness as reported by `/healthz`.
    pub fn health(&self) -> Health {
        self.shared.health()
    }

    /// Signals the acceptor and workers to stop and waits for in-flight
    /// requests (and already-queued connections) to drain.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.health.store(HEALTH_DRAINING, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `model` on `n_workers` threads with environment-tuned hardening
/// options until the handle is shut down or dropped.
pub fn serve(
    model: Arc<ServingModel>,
    addr: &str,
    n_workers: usize,
) -> std::io::Result<ServerHandle> {
    serve_with(
        model,
        addr,
        ServeOptions {
            n_workers,
            ..ServeOptions::from_env()
        },
    )
}

/// [`serve`] with explicit [`ServeOptions`].
///
/// Worker threads that fail to spawn are logged and skipped — the server
/// starts with whatever pool it got, reporting `"degraded"` health.
/// Only a total spawn failure (zero workers) is an error.
pub fn serve_with(
    model: Arc<ServingModel>,
    addr: &str,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let n_requested = opts.n_workers.max(1);
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        health: AtomicU8::new(HEALTH_READY),
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        opts,
    });
    let mut threads = Vec::with_capacity(n_requested + 1);
    let mut spawned = 0usize;
    let mut last_err: Option<std::io::Error> = None;
    for i in 0..n_requested {
        let shared = Arc::clone(&shared);
        let model = Arc::clone(&model);
        match std::thread::Builder::new()
            .name(format!("taxorec-serve-{i}"))
            .spawn(move || worker_loop(&shared, &model))
        {
            Ok(h) => {
                threads.push(h);
                spawned += 1;
            }
            Err(e) => {
                taxorec_telemetry::counter("serve.worker.spawn_failed").inc(1);
                taxorec_telemetry::sink::warn(&format!(
                    "failed to spawn server worker {i}: {e}; continuing with fewer workers"
                ));
                last_err = Some(e);
            }
        }
    }
    if spawned == 0 {
        return Err(
            last_err.unwrap_or_else(|| std::io::Error::other("no server workers could be spawned"))
        );
    }
    if spawned < n_requested {
        shared.health.store(HEALTH_DEGRADED, Ordering::SeqCst);
        taxorec_telemetry::sink::warn(&format!(
            "serving degraded: {spawned}/{n_requested} workers"
        ));
    }
    {
        let shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("taxorec-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?;
        threads.push(acceptor);
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Accepts connections into the bounded queue, shedding with `503` when
/// it is full.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(shared.opts.io_timeout));
                let _ = stream.set_write_timeout(Some(shared.opts.io_timeout));
                // Trace identity is minted here, at the system edge, so
                // even shed responses carry an `x-taxorec-trace` header
                // and queue wait is covered by the trace.
                let ctx = trace::mint();
                let mut q = lock_queue(&shared.queue);
                if q.len() >= shared.opts.max_queue {
                    let depth = q.len();
                    drop(q);
                    shed(stream, ctx, depth, shared.opts.io_timeout);
                    continue;
                }
                q.push_back(Queued {
                    stream,
                    ctx,
                    accepted: Instant::now(),
                });
                taxorec_telemetry::gauge("serve.queue.depth").set(q.len() as f64);
                drop(q);
                shared.ready.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    shared.ready.notify_all();
}

/// Rejects an over-capacity connection with `503 + Retry-After` without
/// reading the request (the write deadline bounds even this). The
/// incident is recorded in the flight ring and triggers a (throttled)
/// dump — a shed storm is exactly the moment the recent-event history
/// matters.
fn shed(mut stream: TcpStream, ctx: TraceContext, queue_depth: usize, io_timeout: Duration) {
    taxorec_telemetry::counter("serve.http.shed").inc(1);
    flight_event!("serve.shed", ctx.trace_id, queue_depth as i64, 0.0);
    flight::dump("serve.shed");
    let retry_after = io_timeout.as_secs().max(1);
    let _ = respond_with(
        &mut stream,
        503,
        ctx.trace_id,
        JSON_CONTENT_TYPE,
        &format!("Retry-After: {retry_after}\r\n"),
        &error_json("server overloaded; retry later"),
    );
}

/// Poison-tolerant queue lock: a worker that panicked while holding the
/// lock (can't happen in the current code, but belts and braces) must not
/// wedge the acceptor.
fn lock_queue(q: &Mutex<VecDeque<Queued>>) -> std::sync::MutexGuard<'_, VecDeque<Queued>> {
    q.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: &Shared, model: &ServingModel) {
    loop {
        let queued = {
            let mut q = lock_queue(&shared.queue);
            loop {
                if let Some(s) = q.pop_front() {
                    taxorec_telemetry::gauge("serve.queue.depth").set(q.len() as f64);
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .ready
                    .wait_timeout(q, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match queued {
            Some(s) => handle_connection(s, shared, model),
            None => return,
        }
    }
}

fn handle_connection(queued: Queued, shared: &Shared, model: &ServingModel) {
    let Queued {
        mut stream,
        ctx,
        accepted,
    } = queued;
    // The wait between accept and dequeue, as a retroactive child span.
    trace::emit_span_at("queue", ctx, accepted, Instant::now());
    // Everything below runs with `ctx` ambient, so `child_span` calls in
    // the serving model (cache, score, kernel) parent into this request.
    let _trace_scope = trace::scope(ctx);
    let head = match read_head(&mut stream, shared.opts.max_request_bytes) {
        Some(h) => h,
        None => {
            let _ = respond(
                &mut stream,
                400,
                ctx.trace_id,
                &error_json("malformed, oversized, or timed-out request"),
            );
            return;
        }
    };
    taxorec_telemetry::counter("serve.http.requests").inc(1);
    let start = Instant::now();
    // Panic isolation: one poisonous request must not take the worker
    // (let alone the process) down with it. The `serve.request` fault
    // site makes this path deterministically testable.
    let routed = catch_unwind(AssertUnwindSafe(|| {
        taxorec_resilience::inject_panic("serve.request");
        route(&head, shared, model)
    }));
    let (status, body, endpoint, content_type) = match routed {
        Ok(r) => r,
        Err(_) => {
            taxorec_telemetry::counter("serve.http.panics").inc(1);
            taxorec_telemetry::sink::warn("request handler panicked; worker continues");
            // Dump *before* responding so the dump file exists by the
            // time the client sees the 500.
            flight_event!("serve.panic", ctx.trace_id, 500, 0.0);
            flight::dump("serve.request.panic");
            (
                500,
                error_json("internal error"),
                "other",
                JSON_CONTENT_TYPE,
            )
        }
    };
    {
        let _respond_span = trace::child_span("respond");
        let _ = respond_with(&mut stream, status, ctx.trace_id, content_type, "", &body);
    }
    // Covers routing (the model work) plus the response write, so the
    // histogram reflects what a client observes.
    let ms = start.elapsed().as_secs_f64() * 1e3;
    taxorec_telemetry::histogram(&format!("serve.http.{endpoint}.ms")).observe(ms);
    taxorec_telemetry::counter(&format!("serve.http.{endpoint}.requests")).inc(1);
    if status >= 400 {
        taxorec_telemetry::counter(&format!("serve.http.{endpoint}.errors")).inc(1);
    }
    flight_event!("serve.request", ctx.trace_id, status as i64, ms);
    // The root span covers accept → response written; emitted last so
    // the whole tree is buffered once the request is externally visible.
    trace::emit_root_at("http", ctx, accepted, Instant::now());
}

/// Reads bytes until the end of the request head (`\r\n\r\n`) and returns
/// the head as text. `None` on malformed, oversized, or timed-out input.
fn read_head(stream: &mut TcpStream, max_bytes: usize) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= max_bytes {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    if buf.len() >= max_bytes {
        return None;
    }
    String::from_utf8(buf).ok()
}

/// Dispatches one parsed request; returns (status, body, endpoint label
/// for telemetry, content type).
fn route(
    head: &str,
    shared: &Shared,
    model: &ServingModel,
) -> (u16, String, &'static str, &'static str) {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            405,
            error_json(&format!("method {method:?} not allowed; use GET")),
            "other",
            JSON_CONTENT_TYPE,
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => (
            200,
            healthz_json(shared, model),
            "healthz",
            JSON_CONTENT_TYPE,
        ),
        "/metrics" => (
            200,
            taxorec_telemetry::prometheus::render(),
            "metrics",
            taxorec_telemetry::prometheus::CONTENT_TYPE,
        ),
        "/metrics.json" => (
            200,
            taxorec_telemetry::snapshot(),
            "metrics",
            JSON_CONTENT_TYPE,
        ),
        "/debug/flight" => (200, flight::snapshot_json(), "flight", JSON_CONTENT_TYPE),
        "/recommend" => {
            let (status, body, ep) = handle_recommend(query, model);
            (status, body, ep, JSON_CONTENT_TYPE)
        }
        "/explain" => {
            let (status, body, ep) = handle_explain(query, model);
            (status, body, ep, JSON_CONTENT_TYPE)
        }
        _ => (
            404,
            error_json(&format!("no route for {path:?}")),
            "other",
            JSON_CONTENT_TYPE,
        ),
    }
}

fn handle_recommend(query: &str, model: &ServingModel) -> (u16, String, &'static str) {
    let user = match require_param(query, "user") {
        Ok(u) => u,
        Err(msg) => return (400, error_json(&msg), "recommend"),
    };
    let k = match param(query, "k") {
        None => DEFAULT_K,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k <= MAX_K => k,
            Ok(k) => {
                return (
                    400,
                    error_json(&format!("k = {k} exceeds the maximum of {MAX_K}")),
                    "recommend",
                )
            }
            Err(_) => {
                return (
                    400,
                    error_json(&format!("query parameter 'k' = {raw:?} is not an integer")),
                    "recommend",
                )
            }
        },
    };
    match model.recommend(user, k) {
        Ok(items) => {
            let mut body = String::with_capacity(32 + items.len() * 32);
            body.push_str("{\"user\":");
            body.push_str(&user.to_string());
            body.push_str(",\"k\":");
            body.push_str(&k.to_string());
            body.push_str(",\"items\":[");
            for (i, &(item, score)) in items.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str("{\"item\":");
                body.push_str(&item.to_string());
                body.push_str(",\"score\":");
                push_f64(&mut body, score);
                body.push('}');
            }
            body.push_str("]}");
            (200, body, "recommend")
        }
        Err(e) => (404, error_json(&e.to_string()), "recommend"),
    }
}

fn handle_explain(query: &str, model: &ServingModel) -> (u16, String, &'static str) {
    let user = match require_param(query, "user") {
        Ok(u) => u,
        Err(msg) => return (400, error_json(&msg), "explain"),
    };
    let item = match require_param(query, "item") {
        Ok(v) => v,
        Err(msg) => return (400, error_json(&msg), "explain"),
    };
    match model.explain(user, item) {
        Ok(ex) => {
            let mut body = String::with_capacity(128);
            body.push_str("{\"user\":");
            body.push_str(&ex.user.to_string());
            body.push_str(",\"item\":");
            body.push_str(&ex.item.to_string());
            body.push_str(",\"score\":");
            push_f64(&mut body, ex.score);
            body.push_str(",\"alpha\":");
            push_f64(&mut body, ex.alpha);
            body.push_str(",\"item_tags\":[");
            for (i, t) in ex.item_tags.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str("{\"tag\":");
                body.push_str(&t.tag.to_string());
                body.push_str(",\"name\":");
                push_str_escaped(&mut body, &t.name);
                body.push_str(",\"distance\":");
                push_f64(&mut body, t.distance);
                body.push('}');
            }
            body.push_str("],\"node_level\":");
            match ex.node_level {
                Some(l) => body.push_str(&l.to_string()),
                None => body.push_str("null"),
            }
            body.push_str(",\"node_tags\":[");
            for (i, name) in ex.node_tags.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                push_str_escaped(&mut body, name);
            }
            body.push_str("]}");
            (200, body, "explain")
        }
        Err(e @ ServeError::UnknownUser { .. }) | Err(e @ ServeError::UnknownItem { .. }) => {
            (404, error_json(&e.to_string()), "explain")
        }
    }
}

fn healthz_json(shared: &Shared, model: &ServingModel) -> String {
    let (cache_len, cache_cap) = model.cache_usage();
    let queued = lock_queue(&shared.queue).len();
    let mut body = String::with_capacity(160);
    body.push_str("{\"status\":\"");
    body.push_str(shared.health().as_str());
    body.push_str("\",\"model\":");
    push_str_escaped(&mut body, model.name());
    body.push_str(",\"users\":");
    body.push_str(&model.n_users().to_string());
    body.push_str(",\"items\":");
    body.push_str(&model.n_items().to_string());
    body.push_str(",\"tags\":");
    body.push_str(&model.n_tags().to_string());
    body.push_str(",\"queue\":{\"depth\":");
    body.push_str(&queued.to_string());
    body.push_str(",\"capacity\":");
    body.push_str(&shared.opts.max_queue.to_string());
    body.push_str("},\"cache\":{\"entries\":");
    body.push_str(&cache_len.to_string());
    body.push_str(",\"capacity\":");
    body.push_str(&cache_cap.to_string());
    body.push_str("}}");
    body
}

fn error_json(message: &str) -> String {
    let mut body = String::with_capacity(message.len() + 12);
    body.push_str("{\"error\":");
    push_str_escaped(&mut body, message);
    body.push('}');
    body
}

/// Value of `name` in an `a=1&b=2` query string, if present.
fn param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn require_param(query: &str, name: &str) -> Result<u32, String> {
    match param(query, name) {
        None => Err(format!("missing required query parameter '{name}'")),
        Some(raw) => raw.parse::<u32>().map_err(|_| {
            format!("query parameter '{name}' = {raw:?} is not a non-negative integer")
        }),
    }
}

fn respond(stream: &mut TcpStream, status: u16, trace_id: u64, body: &str) -> std::io::Result<()> {
    respond_with(stream, status, trace_id, JSON_CONTENT_TYPE, "", body)
}

fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    trace_id: u64,
    content_type: &str,
    extra_headers: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nx-taxorec-trace: {trace_id:016x}\r\n\
         {extra_headers}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_parsing() {
        assert_eq!(param("user=3&k=5", "user"), Some("3"));
        assert_eq!(param("user=3&k=5", "k"), Some("5"));
        assert_eq!(param("user=3", "k"), None);
        assert_eq!(param("", "user"), None);
        assert_eq!(require_param("user=7", "user"), Ok(7));
        assert!(require_param("user=-1", "user")
            .unwrap_err()
            .contains("non-negative"));
        assert!(require_param("k=5", "user").unwrap_err().contains("user"));
    }

    #[test]
    fn error_json_escapes() {
        let j = error_json("bad \"quote\"");
        assert_eq!(j, "{\"error\":\"bad \\\"quote\\\"\"}");
        assert!(taxorec_telemetry::json::is_valid_json(&j));
    }

    #[test]
    fn health_state_strings() {
        assert_eq!(Health::Ready.as_str(), "ready");
        assert_eq!(Health::Degraded.as_str(), "degraded");
        assert_eq!(Health::Draining.as_str(), "draining");
    }

    #[test]
    fn serve_options_defaults_are_sane() {
        let o = ServeOptions::default();
        assert!(o.n_workers >= 1);
        assert!(o.max_queue >= 1);
        assert!(o.io_timeout > Duration::ZERO);
        assert!(o.max_request_bytes >= 1024);
    }
}
