//! Minimal SIGTERM/SIGINT latching without a signal crate.
//!
//! Orchestrators stop processes with SIGTERM (and operators with
//! Ctrl-C); a serving shard must treat both as *graceful drain*, not
//! sudden death. This module installs handlers via the C `signal(2)`
//! entry point — already linked through `std` — that do the only thing
//! an async-signal-safe handler may do with `std` alone: set a relaxed
//! [`AtomicBool`]. The serving loop polls [`triggered`] and runs its
//! normal drain path (health → `draining`, grace period, shutdown).
//!
//! One static latch per process: handlers have no context argument, so
//! the flag is necessarily global. Installing twice is harmless;
//! non-Unix builds compile to a flag that is simply never set.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGTERM/SIGINT; never cleared.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATE;
    use std::sync::atomic::Ordering;

    // POSIX-mandated values on Linux (signal.h).
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one relaxed store.
        TERMINATE.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers. Idempotent.
pub fn install() {
    imp::install();
}

/// `true` once the process has received SIGTERM or SIGINT.
pub fn triggered() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

/// Test-only: arm the latch as if a signal had arrived.
#[doc(hidden)]
pub fn trigger_for_test() {
    TERMINATE.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_sticks_once_set() {
        install(); // must not crash, must be idempotent
        install();
        trigger_for_test();
        assert!(triggered());
        assert!(triggered(), "latch never clears");
    }
}
