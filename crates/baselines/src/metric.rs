//! Euclidean metric-learning baselines: CML, TransCF, LRML, SML
//! (paper §V-A.3, "metric learning methods").

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::{Csr, Matrix, Tape, Var};
use taxorec_core::{init, optim};
use taxorec_data::{Dataset, NegativeSampler, Recommender, Split};
use taxorec_geometry::vecops;

use crate::common::{
    epoch_triplets, euclid_dist_sq, gather_indices, hinge_loss, neighbor_means, unit_ball_project,
    TrainOpts,
};

/// Which translation mechanism a [`MetricModel`] uses — the four baselines
/// share the triplet-hinge training loop and differ in how the user→item
/// relation vector is produced.
enum Relation {
    /// CML (Hsieh et al., WWW 2017): none — plain `‖u − v‖²`.
    None,
    /// TransCF (Park et al., ICDM 2018): `r = p_u ⊙ q_v` from neighborhood
    /// context embeddings, distance `‖u + r − v‖²`.
    Neighborhood {
        user_ctx: Matrix,
        item_ctx: Matrix,
        ui: Arc<Csr>,
        iu: Arc<Csr>,
    },
    /// LRML (Tay et al., WWW 2018): `r = softmax((u⊙v)Kᵀ)·M` from a latent
    /// relational memory.
    Memory { keys: Matrix, memory: Matrix },
    /// SML (Li et al., AAAI 2020): symmetric user- and item-centric hinge
    /// terms with trainable margins.
    Symmetric { margin_u: f64, margin_v: f64 },
}

/// A metric-learning recommender sharing one training loop across the
/// CML/TransCF/LRML/SML family.
pub struct MetricModel {
    opts: TrainOpts,
    name: &'static str,
    relation: Relation,
    u: Matrix,
    v: Matrix,
    /// Materialized per-user context (TransCF) for inference.
    p_ctx: Matrix,
    q_ctx: Matrix,
}

impl MetricModel {
    /// Collaborative metric learning (CML).
    pub fn cml(opts: TrainOpts) -> Self {
        Self::build(opts, "CML", Relation::None)
    }

    /// Translational collaborative filtering (TransCF).
    pub fn transcf(opts: TrainOpts) -> Self {
        Self::build(
            opts,
            "TransCF",
            Relation::Neighborhood {
                user_ctx: Matrix::zeros(0, 0),
                item_ctx: Matrix::zeros(0, 0),
                ui: Arc::new(Csr::identity(1)),
                iu: Arc::new(Csr::identity(1)),
            },
        )
    }

    /// Latent relational metric learning (LRML).
    pub fn lrml(opts: TrainOpts) -> Self {
        Self::build(
            opts,
            "LRML",
            Relation::Memory {
                keys: Matrix::zeros(0, 0),
                memory: Matrix::zeros(0, 0),
            },
        )
    }

    /// Symmetric metric learning with adaptive margins (SML).
    pub fn sml(opts: TrainOpts) -> Self {
        Self::build(
            opts,
            "SML",
            Relation::Symmetric {
                margin_u: 0.5,
                margin_v: 0.25,
            },
        )
    }

    fn build(opts: TrainOpts, name: &'static str, relation: Relation) -> Self {
        Self {
            opts,
            name,
            relation,
            u: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            p_ctx: Matrix::zeros(0, 0),
            q_ctx: Matrix::zeros(0, 0),
        }
    }

    /// Relation vector for gathered `(user_rows, item_rows)` on a tape, or
    /// `None` when the model is translation-free.
    fn relation_var(
        &self,
        tape: &mut Tape,
        gu: Var,
        gv: Var,
        pu: Option<Var>,
        qv: Option<Var>,
        mem: Option<(Var, Var)>,
    ) -> Option<Var> {
        match &self.relation {
            Relation::None | Relation::Symmetric { .. } => None,
            Relation::Neighborhood { .. } => {
                let (pu, qv) = (pu.unwrap(), qv.unwrap());
                Some(tape.hadamard(pu, qv))
            }
            Relation::Memory { .. } => {
                let (keys, memory) = mem.unwrap();
                let joint = tape.hadamard(gu, gv);
                let kt = tape.leaf(tape_transpose(tape, keys));
                let logits = tape.matmul(joint, kt);
                let att = tape.softmax_rows(logits);
                Some(tape.matmul(att, memory))
            }
        }
    }
}

/// Transposed copy of a tape value (constant w.r.t. gradients of the
/// transposed view; LRML keys receive gradient through the original leaf
/// only in the memory matmul — an accepted simplification of the paper's
/// tied attention).
fn tape_transpose(tape: &Tape, v: Var) -> Matrix {
    tape.value(v).transpose()
}

impl Recommender for MetricModel {
    fn name(&self) -> &str {
        self.name
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let d = self.opts.dim;
        self.u = init::normal_matrix(&mut rng, dataset.n_users, d, 0.1);
        self.v = init::normal_matrix(&mut rng, dataset.n_items, d, 0.1);
        if let Relation::Neighborhood {
            user_ctx,
            item_ctx,
            ui,
            iu,
        } = &mut self.relation
        {
            *user_ctx = init::normal_matrix(&mut rng, dataset.n_users, d, 0.1);
            *item_ctx = init::normal_matrix(&mut rng, dataset.n_items, d, 0.1);
            let (m_ui, m_iu) = neighbor_means(dataset, split);
            *ui = m_ui;
            *iu = m_iu;
        }
        if let Relation::Memory { keys, memory } = &mut self.relation {
            let slots = 8;
            *keys = init::normal_matrix(&mut rng, slots, d, 0.3);
            *memory = init::normal_matrix(&mut rng, slots, d, 0.1);
        }
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let u_leaf = tape.leaf(self.u.clone());
                let v_leaf = tape.leaf(self.v.clone());
                let ui_idx = gather_indices(&users[lo..hi]);
                let p_idx = gather_indices(&pos[lo..hi]);
                let n_idx = gather_indices(&neg[lo..hi]);
                let gu = tape.gather_rows(u_leaf, ui_idx.clone());
                let gp = tape.gather_rows(v_leaf, p_idx.clone());
                let gq = tape.gather_rows(v_leaf, n_idx.clone());

                // Optional context/memory leaves.
                let mut ctx_leaves = None;
                let mut pu = None;
                let mut qp = None;
                let mut qn = None;
                if let Relation::Neighborhood {
                    user_ctx,
                    item_ctx,
                    ui,
                    iu,
                } = &self.relation
                {
                    let uc = tape.leaf(user_ctx.clone());
                    let ic = tape.leaf(item_ctx.clone());
                    let p_full = tape.spmm(ui, ic);
                    let q_full = tape.spmm(iu, uc);
                    pu = Some(tape.gather_rows(p_full, ui_idx.clone()));
                    qp = Some(tape.gather_rows(q_full, p_idx.clone()));
                    qn = Some(tape.gather_rows(q_full, n_idx.clone()));
                    ctx_leaves = Some((uc, ic));
                }
                let mut mem_leaves = None;
                if let Relation::Memory { keys, memory } = &self.relation {
                    let k = tape.leaf(keys.clone());
                    let m = tape.leaf(memory.clone());
                    mem_leaves = Some((k, m));
                }

                // Distances (relation computed from the positive pair, as
                // in LRML/TransCF training).
                let (d_pos, d_neg) = {
                    let r_pos = self.relation_var(&mut tape, gu, gp, pu, qp, mem_leaves);
                    match r_pos {
                        Some(r) => {
                            let shifted = tape.add(gu, r);
                            let dp = euclid_dist_sq(&mut tape, shifted, gp);
                            // Negative uses its own context for TransCF,
                            // the positive relation for LRML.
                            let dn = match &self.relation {
                                Relation::Neighborhood { .. } => {
                                    let r_neg = self
                                        .relation_var(&mut tape, gu, gq, pu, qn, mem_leaves)
                                        .unwrap();
                                    let sh = tape.add(gu, r_neg);
                                    euclid_dist_sq(&mut tape, sh, gq)
                                }
                                _ => euclid_dist_sq(&mut tape, shifted, gq),
                            };
                            (dp, dn)
                        }
                        None => (
                            euclid_dist_sq(&mut tape, gu, gp),
                            euclid_dist_sq(&mut tape, gu, gq),
                        ),
                    }
                };

                let loss = match &self.relation {
                    Relation::Symmetric { margin_u, margin_v } => {
                        let l_user = hinge_loss(&mut tape, d_pos, d_neg, *margin_u);
                        // Item-centric: positive item vs. negative item.
                        let d_items = euclid_dist_sq(&mut tape, gp, gq);
                        let nd = tape.neg(d_items);
                        let dp2 = tape.add(d_pos, nd);
                        let m2 = tape.add_scalar(dp2, *margin_v);
                        let h2 = tape.relu(m2);
                        let l_item = tape.mean_all(h2);
                        tape.add(l_user, l_item)
                    }
                    _ => hinge_loss(&mut tape, d_pos, d_neg, self.opts.margin),
                };

                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(u_leaf) {
                    optim::sgd(&mut self.u, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(v_leaf) {
                    optim::sgd(&mut self.v, &g, self.opts.lr);
                }
                if let Some((uc, ic)) = ctx_leaves {
                    let gu_ctx = grads.take(uc);
                    let gi_ctx = grads.take(ic);
                    if let Relation::Neighborhood {
                        user_ctx, item_ctx, ..
                    } = &mut self.relation
                    {
                        if let Some(g) = gu_ctx {
                            optim::sgd(user_ctx, &g, self.opts.lr);
                        }
                        if let Some(g) = gi_ctx {
                            optim::sgd(item_ctx, &g, self.opts.lr);
                        }
                    }
                }
                if let Some((k, m)) = mem_leaves {
                    let gk = grads.take(k);
                    let gm = grads.take(m);
                    if let Relation::Memory { keys, memory } = &mut self.relation {
                        if let Some(g) = gk {
                            optim::sgd(keys, &g, self.opts.lr);
                        }
                        if let Some(g) = gm {
                            optim::sgd(memory, &g, self.opts.lr);
                        }
                    }
                }
                // CML-family norm constraint.
                unit_ball_project(&mut self.u);
                unit_ball_project(&mut self.v);
            }
        }
        // Materialize TransCF contexts for inference.
        if let Relation::Neighborhood {
            user_ctx,
            item_ctx,
            ui,
            iu,
        } = &self.relation
        {
            self.p_ctx = ui.matmul(item_ctx);
            self.q_ctx = iu.matmul(user_ctx);
        }
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.u.row(user as usize);
        let n_items = self.v.rows();
        let d = self.u.cols();
        match &self.relation {
            Relation::None | Relation::Symmetric { .. } => (0..n_items)
                .map(|v| -vecops::sqdist(urow, self.v.row(v)))
                .collect(),
            Relation::Neighborhood { .. } => {
                let pu = self.p_ctx.row(user as usize);
                let mut shifted = vec![0.0; d];
                (0..n_items)
                    .map(|v| {
                        let qv = self.q_ctx.row(v);
                        for i in 0..d {
                            shifted[i] = urow[i] + pu[i] * qv[i];
                        }
                        -vecops::sqdist(&shifted, self.v.row(v))
                    })
                    .collect()
            }
            Relation::Memory { keys, memory } => {
                let slots = keys.rows();
                let mut shifted = vec![0.0; d];
                let mut att = vec![0.0; slots];
                (0..n_items)
                    .map(|v| {
                        let vrow = self.v.row(v);
                        // r = softmax((u ⊙ v)·Kᵀ)·M
                        let mut mx = f64::NEG_INFINITY;
                        for (s, a) in att.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for i in 0..d {
                                acc += urow[i] * vrow[i] * keys.get(s, i);
                            }
                            *a = acc;
                            mx = mx.max(acc);
                        }
                        let mut z = 0.0;
                        for a in att.iter_mut() {
                            *a = (*a - mx).exp();
                            z += *a;
                        }
                        for i in 0..d {
                            shifted[i] = urow[i];
                            for (s, a) in att.iter().enumerate() {
                                shifted[i] += a / z * memory.get(s, i);
                            }
                        }
                        -vecops::sqdist(&shifted, vrow)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    fn setup() -> (Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        (d, s)
    }

    fn positives_beat_mean(model: &dyn Recommender, split: &Split) -> bool {
        let mut pos = 0.0;
        let mut np = 0usize;
        let mut all = 0.0;
        let mut na = 0usize;
        for (u, items) in split.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let s = model.scores_for_user(u as u32);
            for &v in items {
                pos += s[v as usize];
                np += 1;
            }
            all += s.iter().sum::<f64>();
            na += s.len();
        }
        pos / np as f64 > all / na as f64
    }

    #[test]
    fn cml_learns_and_respects_norm_constraint() {
        let (d, s) = setup();
        let mut m = MetricModel::cml(TrainOpts {
            lr: 0.5,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
        for r in 0..m.u.rows() {
            assert!(vecops::norm(m.u.row(r)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn transcf_learns() {
        let (d, s) = setup();
        let mut m = MetricModel::transcf(TrainOpts {
            lr: 0.5,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn lrml_learns() {
        let (d, s) = setup();
        let mut m = MetricModel::lrml(TrainOpts {
            lr: 0.5,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn sml_learns() {
        let (d, s) = setup();
        let mut m = MetricModel::sml(TrainOpts {
            lr: 0.5,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn names() {
        assert_eq!(MetricModel::cml(TrainOpts::default()).name(), "CML");
        assert_eq!(MetricModel::transcf(TrainOpts::default()).name(), "TransCF");
        assert_eq!(MetricModel::lrml(TrainOpts::default()).name(), "LRML");
        assert_eq!(MetricModel::sml(TrainOpts::default()).name(), "SML");
    }
}
