//! Matrix-factorization baselines: BPRMF, NMF, NeuMF (paper §V-A.3,
//! "general recommendation methods").

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::{Csr, Matrix, Tape};
use taxorec_core::{init, optim};
use taxorec_data::{Dataset, NegativeSampler, Recommender, Split};

use crate::common::{bpr_loss, epoch_triplets, gather_indices, TrainOpts};

// ---------------------------------------------------------------------------
// BPRMF — Rendle et al., UAI 2009.
// ---------------------------------------------------------------------------

/// Bayesian personalized ranking over a matrix-factorization scorer:
/// `x̂_uv = p_u · q_v`, trained with the pairwise log-sigmoid objective.
pub struct Bprmf {
    opts: TrainOpts,
    p: Matrix,
    q: Matrix,
}

impl Bprmf {
    /// Creates an untrained BPRMF model.
    pub fn new(opts: TrainOpts) -> Self {
        Self {
            opts,
            p: Matrix::zeros(0, 0),
            q: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for Bprmf {
    fn name(&self) -> &str {
        "BPRMF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.p = init::normal_matrix(&mut rng, dataset.n_users, self.opts.dim, 0.1);
        self.q = init::normal_matrix(&mut rng, dataset.n_items, self.opts.dim, 0.1);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let p = tape.leaf(self.p.clone());
                let q = tape.leaf(self.q.clone());
                let gu = tape.gather_rows(p, gather_indices(&users[lo..hi]));
                let gp = tape.gather_rows(q, gather_indices(&pos[lo..hi]));
                let gq = tape.gather_rows(q, gather_indices(&neg[lo..hi]));
                let sp = tape.row_dot(gu, gp);
                let sn = tape.row_dot(gu, gq);
                let loss = bpr_loss(&mut tape, sp, sn);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(p) {
                    optim::sgd(&mut self.p, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(q) {
                    optim::sgd(&mut self.q, &g, self.opts.lr);
                }
            }
        }
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.p.row(user as usize);
        (0..self.q.rows())
            .map(|v| taxorec_geometry::vecops::dot(urow, self.q.row(v)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// NMF — Lee & Seung, Nature 1999 (multiplicative updates).
// ---------------------------------------------------------------------------

/// Non-negative matrix factorization of the binary implicit matrix via the
/// classical multiplicative update rules, `X ≈ W·H`.
pub struct Nmf {
    opts: TrainOpts,
    w: Matrix,
    h: Matrix,
}

impl Nmf {
    /// Creates an untrained NMF model.
    pub fn new(opts: TrainOpts) -> Self {
        Self {
            opts,
            w: Matrix::zeros(0, 0),
            h: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for Nmf {
    fn name(&self) -> &str {
        "NMF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let d = self.opts.dim;
        // Non-negative init in (0, 1).
        let uniform = |rng: &mut StdRng, r: usize, c: usize| {
            use rand::RngExt;
            let data = (0..r * c)
                .map(|_| rng.random::<f64>() * 0.5 + 1e-3)
                .collect();
            Matrix::from_vec(r, c, data)
        };
        self.w = uniform(&mut rng, dataset.n_users, d);
        self.h = uniform(&mut rng, d, dataset.n_items);
        let triplets: Vec<(usize, usize, f64)> = split
            .train
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&v| (u, v as usize, 1.0)))
            .collect();
        let x = Csr::from_triplets(dataset.n_users, dataset.n_items, &triplets);
        let xt = x.transpose();
        const EPS: f64 = 1e-9;
        for _ in 0..self.opts.epochs {
            // H ← H ⊙ (Wᵀ X) / (Wᵀ W H)
            let wt = self.w.transpose();
            let wtx = xt.matmul(&self.w).transpose(); // (d × n_items) as (WᵀX)
            let wtwh = wt.matmul(&self.w).matmul(&self.h);
            for i in 0..self.h.data().len() {
                let num = wtx.data()[i];
                let den = wtwh.data()[i] + EPS;
                self.h.data_mut()[i] *= num / den;
            }
            // W ← W ⊙ (X Hᵀ) / (W H Hᵀ)
            let xht = x.matmul(&self.h.transpose()); // n_users × d
            let hht = self.h.matmul(&self.h.transpose()); // d × d
            let whht = self.w.matmul(&hht);
            for i in 0..self.w.data().len() {
                let num = xht.data()[i];
                let den = whht.data()[i] + EPS;
                self.w.data_mut()[i] *= num / den;
            }
        }
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.w.row(user as usize);
        (0..self.h.cols())
            .map(|v| (0..self.h.rows()).map(|k| urow[k] * self.h.get(k, v)).sum())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// NeuMF — He et al., WWW 2017.
// ---------------------------------------------------------------------------

/// Neural collaborative filtering: a GMF branch (`u ⊙ v`) and an MLP branch
/// over the pair, fused by a linear head and trained with binary
/// cross-entropy on sampled negatives.
pub struct Neumf {
    opts: TrainOpts,
    // GMF embeddings.
    p_g: Matrix,
    q_g: Matrix,
    // MLP embeddings + weights ([U,V]·W1 = U·W1a + V·W1b).
    p_m: Matrix,
    q_m: Matrix,
    w1a: Matrix,
    w1b: Matrix,
    w2: Matrix,
    /// Fusion head over [gmf ⊙; mlp hidden] — split in two like W1.
    h_g: Matrix,
    h_m: Matrix,
}

impl Neumf {
    /// Creates an untrained NeuMF model.
    pub fn new(opts: TrainOpts) -> Self {
        Self {
            opts,
            p_g: Matrix::zeros(0, 0),
            q_g: Matrix::zeros(0, 0),
            p_m: Matrix::zeros(0, 0),
            q_m: Matrix::zeros(0, 0),
            w1a: Matrix::zeros(0, 0),
            w1b: Matrix::zeros(0, 0),
            w2: Matrix::zeros(0, 0),
            h_g: Matrix::zeros(0, 0),
            h_m: Matrix::zeros(0, 0),
        }
    }

    /// Builds the fused score for gathered user/item rows on a tape;
    /// returns the `(batch × 1)` logit.
    #[allow(clippy::too_many_arguments)]
    fn score(
        tape: &mut Tape,
        gu_g: taxorec_autodiff::Var,
        gv_g: taxorec_autodiff::Var,
        gu_m: taxorec_autodiff::Var,
        gv_m: taxorec_autodiff::Var,
        w1a: taxorec_autodiff::Var,
        w1b: taxorec_autodiff::Var,
        w2: taxorec_autodiff::Var,
        h_g: taxorec_autodiff::Var,
        h_m: taxorec_autodiff::Var,
    ) -> taxorec_autodiff::Var {
        let gmf = tape.hadamard(gu_g, gv_g);
        let ua = tape.matmul(gu_m, w1a);
        let vb = tape.matmul(gv_m, w1b);
        let pre1 = tape.add(ua, vb);
        let hid1 = tape.relu(pre1);
        let pre2 = tape.matmul(hid1, w2);
        let hid2 = tape.relu(pre2);
        let s_g = tape.matmul(gmf, h_g);
        let s_m = tape.matmul(hid2, h_m);
        tape.add(s_g, s_m)
    }
}

impl Recommender for Neumf {
    fn name(&self) -> &str {
        "NeuMF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let d = self.opts.dim / 2;
        let d = d.max(2);
        self.p_g = init::normal_matrix(&mut rng, dataset.n_users, d, 0.1);
        self.q_g = init::normal_matrix(&mut rng, dataset.n_items, d, 0.1);
        self.p_m = init::normal_matrix(&mut rng, dataset.n_users, d, 0.1);
        self.q_m = init::normal_matrix(&mut rng, dataset.n_items, d, 0.1);
        let scale = (1.0 / d as f64).sqrt();
        self.w1a = init::normal_matrix(&mut rng, d, d, scale);
        self.w1b = init::normal_matrix(&mut rng, d, d, scale);
        self.w2 = init::normal_matrix(&mut rng, d, d, scale);
        self.h_g = init::normal_matrix(&mut rng, d, 1, scale);
        self.h_m = init::normal_matrix(&mut rng, d, 1, scale);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let p_g = tape.leaf(self.p_g.clone());
                let q_g = tape.leaf(self.q_g.clone());
                let p_m = tape.leaf(self.p_m.clone());
                let q_m = tape.leaf(self.q_m.clone());
                let w1a = tape.leaf(self.w1a.clone());
                let w1b = tape.leaf(self.w1b.clone());
                let w2 = tape.leaf(self.w2.clone());
                let h_g = tape.leaf(self.h_g.clone());
                let h_m = tape.leaf(self.h_m.clone());
                let ui = gather_indices(&users[lo..hi]);
                let pi = gather_indices(&pos[lo..hi]);
                let ni = gather_indices(&neg[lo..hi]);
                let gu_g = tape.gather_rows(p_g, ui.clone());
                let gu_m = tape.gather_rows(p_m, ui);
                let gp_g = tape.gather_rows(q_g, pi.clone());
                let gp_m = tape.gather_rows(q_m, pi);
                let gn_g = tape.gather_rows(q_g, ni.clone());
                let gn_m = tape.gather_rows(q_m, ni);
                let s_pos = Self::score(&mut tape, gu_g, gp_g, gu_m, gp_m, w1a, w1b, w2, h_g, h_m);
                let s_neg = Self::score(&mut tape, gu_g, gn_g, gu_m, gn_m, w1a, w1b, w2, h_g, h_m);
                // BCE: positives label 1 → softplus(−s); negatives label 0
                // → softplus(s).
                let nsp = tape.neg(s_pos);
                let l_pos = tape.softplus(nsp);
                let l_neg = tape.softplus(s_neg);
                let l_sum = tape.add(l_pos, l_neg);
                let loss = tape.mean_all(l_sum);
                let mut grads = tape.backward(loss);
                for (param, var) in [
                    (&mut self.p_g, p_g),
                    (&mut self.q_g, q_g),
                    (&mut self.p_m, p_m),
                    (&mut self.q_m, q_m),
                    (&mut self.w1a, w1a),
                    (&mut self.w1b, w1b),
                    (&mut self.w2, w2),
                    (&mut self.h_g, h_g),
                    (&mut self.h_m, h_m),
                ] {
                    if let Some(g) = grads.take(var) {
                        optim::sgd(param, &g, self.opts.lr);
                    }
                }
            }
        }
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        // Rebuild the forward for one user against all items on a tape
        // (values only; no backward).
        let n_items = self.q_g.rows();
        let mut tape = Tape::new();
        let u_idx = rc_idx(vec![user as usize; n_items]);
        let all: std::sync::Arc<Vec<usize>> = rc_idx((0..n_items).collect());
        let p_g = tape.leaf(self.p_g.clone());
        let q_g = tape.leaf(self.q_g.clone());
        let p_m = tape.leaf(self.p_m.clone());
        let q_m = tape.leaf(self.q_m.clone());
        let w1a = tape.leaf(self.w1a.clone());
        let w1b = tape.leaf(self.w1b.clone());
        let w2 = tape.leaf(self.w2.clone());
        let h_g = tape.leaf(self.h_g.clone());
        let h_m = tape.leaf(self.h_m.clone());
        let gu_g = tape.gather_rows(p_g, u_idx.clone());
        let gu_m = tape.gather_rows(p_m, u_idx);
        let gv_g = tape.gather_rows(q_g, all.clone());
        let gv_m = tape.gather_rows(q_m, all);
        let s = Self::score(&mut tape, gu_g, gv_g, gu_m, gv_m, w1a, w1b, w2, h_g, h_m);
        tape.value(s).data().to_vec()
    }
}

fn rc_idx(v: Vec<usize>) -> std::sync::Arc<Vec<usize>> {
    std::sync::Arc::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    fn setup() -> (Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        (d, s)
    }

    fn positives_beat_mean(model: &dyn Recommender, split: &Split) -> bool {
        let mut pos = 0.0;
        let mut np = 0usize;
        let mut all = 0.0;
        let mut na = 0usize;
        for (u, items) in split.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let s = model.scores_for_user(u as u32);
            for &v in items {
                pos += s[v as usize];
                np += 1;
            }
            all += s.iter().sum::<f64>();
            na += s.len();
        }
        pos / np as f64 > all / na as f64
    }

    #[test]
    fn bprmf_learns_train_preferences() {
        let (d, s) = setup();
        let mut m = Bprmf::new(TrainOpts::fast_test());
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
        assert!(m.scores_for_user(0).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn nmf_learns_nonnegative_factors() {
        let (d, s) = setup();
        let mut m = Nmf::new(TrainOpts {
            epochs: 30,
            dim: 8,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(m.w.data().iter().all(|&x| x >= 0.0 && x.is_finite()));
        assert!(m.h.data().iter().all(|&x| x >= 0.0 && x.is_finite()));
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn neumf_learns_train_preferences() {
        let (d, s) = setup();
        let mut m = Neumf::new(TrainOpts {
            epochs: 20,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Bprmf::new(TrainOpts::default()).name(), "BPRMF");
        assert_eq!(Nmf::new(TrainOpts::default()).name(), "NMF");
        assert_eq!(Neumf::new(TrainOpts::default()).name(), "NeuMF");
    }
}
