//! HyperML (Vinh Tran et al., WSDM 2020): metric learning in hyperbolic
//! space, bridging CML and hyperbolic geometry.
//!
//! Embeddings live on the hyperboloid; the pull–push objective is the
//! triplet hinge over squared Lorentz distances, optimized with
//! Riemannian SGD. (Distinct from the paper's Hyper+CML ablation only in
//! lineage — HyperML is the published baseline this module reproduces;
//! TaxoRec's ablation shares the same core but runs inside the TaxoRec
//! training loop.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::{Matrix, Tape};
use taxorec_core::{init, optim};
use taxorec_data::{Dataset, NegativeSampler, Recommender, Split};
use taxorec_geometry::lorentz;

use crate::common::{epoch_triplets, gather_indices, hinge_loss, TrainOpts};

/// Hyperbolic metric learning on the Lorentz model.
pub struct HyperMl {
    opts: TrainOpts,
    u: Matrix,
    v: Matrix,
}

impl HyperMl {
    /// Creates an untrained HyperML model.
    pub fn new(opts: TrainOpts) -> Self {
        Self {
            opts,
            u: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for HyperMl {
    fn name(&self) -> &str {
        "HyperML"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.u = init::lorentz_matrix(&mut rng, dataset.n_users, self.opts.dim, 0.1);
        self.v = init::lorentz_matrix(&mut rng, dataset.n_items, self.opts.dim, 0.1);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, mut neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            // Hard-negative mining against the current embeddings keeps
            // the hinge from saturating at reproduction scale (see
            // TaxoRecConfig::hard_negative_pool for the rationale).
            for (i, &u) in users.iter().enumerate() {
                let urow = self.u.row(u as usize);
                let mut best = neg[i];
                let mut best_d = lorentz::distance_sq(urow, self.v.row(best as usize));
                for _ in 0..9 {
                    let cand = sampler.sample(u, &mut rng);
                    let d = lorentz::distance_sq(urow, self.v.row(cand as usize));
                    if d < best_d {
                        best_d = d;
                        best = cand;
                    }
                }
                neg[i] = best;
            }
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let u_leaf = tape.leaf(self.u.clone());
                let v_leaf = tape.leaf(self.v.clone());
                let gu = tape.gather_rows(u_leaf, gather_indices(&users[lo..hi]));
                let gp = tape.gather_rows(v_leaf, gather_indices(&pos[lo..hi]));
                let gq = tape.gather_rows(v_leaf, gather_indices(&neg[lo..hi]));
                let d_pos = tape.lorentz_dist_sq(gu, gp);
                let d_neg = tape.lorentz_dist_sq(gu, gq);
                let loss = hinge_loss(&mut tape, d_pos, d_neg, self.opts.margin);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(u_leaf) {
                    optim::rsgd_lorentz(&mut self.u, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(v_leaf) {
                    optim::rsgd_lorentz(&mut self.v, &g, self.opts.lr);
                }
            }
        }
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.u.row(user as usize);
        (0..self.v.rows())
            .map(|v| -lorentz::distance_sq(urow, self.v.row(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    #[test]
    fn hyperml_learns_and_stays_on_manifold() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let mut m = HyperMl::new(TrainOpts {
            lr: 0.3,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        for r in 0..m.u.rows() {
            assert!(lorentz::constraint_residual(m.u.row(r)) < 1e-7);
        }
        // Training positives score above the catalogue mean.
        let mut pos = 0.0;
        let mut np = 0usize;
        let mut all = 0.0;
        let mut na = 0usize;
        for (u, items) in s.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let sc = m.scores_for_user(u as u32);
            for &v in items {
                pos += sc[v as usize];
                np += 1;
            }
            all += sc.iter().sum::<f64>();
            na += sc.len();
        }
        assert!(pos / np as f64 > all / na as f64);
    }
}
