//! The full baseline lineup, in the paper's Table II row order, plus
//! TaxoRec itself — one factory for the experiment harness.

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::Recommender;

use crate::common::TrainOpts;
use crate::graph::{Hgcf, LightGcn, Ngcf};
use crate::hyper::HyperMl;
use crate::metric::MetricModel;
use crate::mf::{Bprmf, Neumf, Nmf};
use crate::tag::{Agcn, Amf, Cmlf};

/// HyperML's Riemannian steps run at roughly 1/8 of the Euclidean rate
/// with a wider margin (validation-selected; see EXPERIMENTS.md).
fn hyper_opts(opts: &TrainOpts) -> TrainOpts {
    TrainOpts {
        lr: (opts.lr / 8.0).max(0.3),
        margin: 2.0,
        ..opts.clone()
    }
}

/// Euclidean metric-learning models need larger steps than the MF family
/// (mean-normalized hinge gradients are small).
fn metric_opts(opts: &TrainOpts) -> TrainOpts {
    TrainOpts {
        lr: opts.lr.max(0.5),
        ..opts.clone()
    }
}

/// Builds one model by its Table II name.
///
/// `gcn_layers` applies to the graph models; `seed` overrides
/// `opts.seed`. Returns `None` for an unknown name.
pub fn by_name(
    name: &str,
    opts: &TrainOpts,
    taxorec_config: &TaxoRecConfig,
    gcn_layers: usize,
) -> Option<Box<dyn Recommender>> {
    let o = opts.clone();
    Some(match name {
        "BPRMF" => Box::new(Bprmf::new(o)),
        "NMF" => Box::new(Nmf::new(o)),
        "NeuMF" => Box::new(Neumf::new(o)),
        "CML" => Box::new(MetricModel::cml(metric_opts(opts))),
        "TransCF" => Box::new(MetricModel::transcf(metric_opts(opts))),
        "LRML" => Box::new(MetricModel::lrml(metric_opts(opts))),
        "SML" => Box::new(MetricModel::sml(metric_opts(opts))),
        "HyperML" => Box::new(HyperMl::new(hyper_opts(opts))),
        "NGCF" => Box::new(Ngcf::new(o, gcn_layers)),
        "LightGCN" => Box::new(LightGcn::new(o, gcn_layers)),
        "HGCF" => Box::new(Hgcf::new(hyper_opts(opts), gcn_layers)),
        "CMLF" => Box::new(Cmlf::new(metric_opts(opts))),
        "AMF" => Box::new(Amf::new(o)),
        "AGCN" => Box::new(Agcn::new(o, gcn_layers)),
        "TaxoRec" => Box::new(TaxoRec::new(taxorec_config.clone())),
        _ => return None,
    })
}

/// The Table II row order: 14 baselines then TaxoRec.
pub const TABLE2_ORDER: [&str; 15] = [
    "BPRMF", "NMF", "NeuMF", "CML", "TransCF", "LRML", "SML", "HyperML", "NGCF", "LightGCN",
    "HGCF", "CMLF", "AMF", "AGCN", "TaxoRec",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table2_name_resolves() {
        let opts = TrainOpts::fast_test();
        let cfg = TaxoRecConfig::fast_test();
        for name in TABLE2_ORDER {
            let m = by_name(name, &opts, &cfg, 2).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(m.name(), name);
        }
        assert!(by_name("NotAModel", &opts, &cfg, 2).is_none());
    }
}
