//! Shared infrastructure for the 14 baseline recommenders: training
//! options, triplet/BPR sampling, loss builders, and graph normalizations.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use taxorec_autodiff::{Csr, Matrix, Tape, Var};
use taxorec_data::{Dataset, NegativeSampler, Split};

/// Training options shared by all baselines (each model maps them onto its
/// own parameterization).
#[derive(Clone, Debug)]
pub struct TrainOpts {
    /// Embedding dimensionality (total; tag-based models may subdivide).
    pub dim: usize,
    /// Learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Triplets per minibatch.
    pub batch: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Margin for hinge-style losses.
    pub margin: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainOpts {
    fn default() -> Self {
        Self {
            dim: 32,
            lr: 0.1,
            epochs: 60,
            batch: 4096,
            negatives: 1,
            margin: 0.5,
            seed: 42,
        }
    }
}

impl TrainOpts {
    /// Faster settings for unit tests.
    pub fn fast_test() -> Self {
        Self {
            dim: 12,
            epochs: 30,
            lr: 0.3,
            ..Self::default()
        }
    }
}

/// One epoch's worth of shuffled `(user, positive, negative)` triplets.
pub fn epoch_triplets(
    pairs: &mut [(u32, u32)],
    sampler: &NegativeSampler,
    negatives: usize,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    pairs.shuffle(rng);
    let mut users = Vec::with_capacity(pairs.len() * negatives);
    let mut pos = Vec::with_capacity(users.capacity());
    let mut neg = Vec::with_capacity(users.capacity());
    for &(u, v) in pairs.iter() {
        for _ in 0..negatives.max(1) {
            users.push(u);
            pos.push(v);
            neg.push(sampler.sample(u, rng));
        }
    }
    (users, pos, neg)
}

/// Index vectors of a triplet batch as `Arc<Vec<usize>>` for gather ops.
pub fn gather_indices(ids: &[u32]) -> Arc<Vec<usize>> {
    Arc::new(ids.iter().map(|&x| x as usize).collect())
}

/// BPR loss `mean(softplus(−(score_pos − score_neg)))` (Rendle et al.).
pub fn bpr_loss(tape: &mut Tape, score_pos: Var, score_neg: Var) -> Var {
    let diff = tape.sub(score_pos, score_neg);
    let ndiff = tape.neg(diff);
    let sp = tape.softplus(ndiff);
    tape.mean_all(sp)
}

/// Hinge loss `mean([margin + d_pos − d_neg]₊)` over *distances* (smaller
/// is better).
pub fn hinge_loss(tape: &mut Tape, d_pos: Var, d_neg: Var, margin: f64) -> Var {
    let diff = tape.sub(d_pos, d_neg);
    let m = tape.add_scalar(diff, margin);
    let h = tape.relu(m);
    tape.mean_all(h)
}

/// Rowwise squared Euclidean distance `‖a − b‖²` → `(n×1)`.
pub fn euclid_dist_sq(tape: &mut Tape, a: Var, b: Var) -> Var {
    let d = tape.sub(a, b);
    tape.row_sqnorm(d)
}

/// Clips every row of a parameter matrix into the Euclidean unit ball —
/// the norm constraint of CML-family models.
pub fn unit_ball_project(m: &mut Matrix) {
    for r in 0..m.rows() {
        taxorec_geometry::vecops::clip_norm(m.row_mut(r), 1.0);
    }
}

/// Symmetrically normalized bipartite adjacency
/// `Â = D^{-1/2} A D^{-1/2}` over the stacked `(users + items)` node set —
/// LightGCN/NGCF propagation. No self-loops (LightGCN's design).
pub fn sym_norm_adjacency(dataset: &Dataset, split: &Split) -> Arc<Csr> {
    let n_users = dataset.n_users;
    let n = n_users + dataset.n_items;
    let mut deg = vec![0usize; n];
    for (u, items) in split.train.iter().enumerate() {
        deg[u] += items.len();
        for &v in items {
            deg[n_users + v as usize] += 1;
        }
    }
    let mut triplets = Vec::new();
    for (u, items) in split.train.iter().enumerate() {
        for &v in items {
            let w = 1.0 / ((deg[u] as f64).sqrt() * (deg[n_users + v as usize] as f64).sqrt());
            triplets.push((u, n_users + v as usize, w));
            triplets.push((n_users + v as usize, u, w));
        }
    }
    Arc::new(Csr::from_triplets(n, n, &triplets))
}

/// Row-normalized item→tag matrix (`n_items × n_tags`) — the Euclidean
/// tag-average used by the tag-based baselines.
pub fn item_tag_mean(dataset: &Dataset) -> Arc<Csr> {
    let mut triplets = Vec::new();
    for (v, tags) in dataset.item_tags.iter().enumerate() {
        for &t in tags {
            triplets.push((v, t as usize, 1.0));
        }
    }
    let mut m = Csr::from_triplets(dataset.n_items, dataset.n_tags.max(1), &triplets);
    m.normalize_rows();
    Arc::new(m)
}

/// User→item and item→user row-normalized adjacencies (mean neighborhood
/// aggregation) — TransCF's context construction.
pub fn neighbor_means(dataset: &Dataset, split: &Split) -> (Arc<Csr>, Arc<Csr>) {
    let mut ui = Vec::new();
    let mut iu = Vec::new();
    for (u, items) in split.train.iter().enumerate() {
        for &v in items {
            ui.push((u, v as usize, 1.0));
            iu.push((v as usize, u, 1.0));
        }
    }
    let mut m_ui = Csr::from_triplets(dataset.n_users, dataset.n_items, &ui);
    m_ui.normalize_rows();
    let mut m_iu = Csr::from_triplets(dataset.n_items, dataset.n_users, &iu);
    m_iu.normalize_rows();
    (Arc::new(m_ui), Arc::new(m_iu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use taxorec_data::{generate_preset, Preset, Scale};

    #[test]
    fn triplets_have_consistent_lengths_and_no_positive_negatives() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let sampler = NegativeSampler::new(d.n_items, s.train.clone());
        let mut pairs = s.train_pairs();
        let mut rng = StdRng::seed_from_u64(1);
        let (u, p, n) = epoch_triplets(&mut pairs, &sampler, 2, &mut rng);
        assert_eq!(u.len(), pairs.len() * 2);
        assert_eq!(u.len(), p.len());
        assert_eq!(u.len(), n.len());
        for i in 0..u.len() {
            assert!(!sampler.is_positive(u[i], n[i]));
        }
    }

    #[test]
    fn bpr_loss_decreases_with_separation() {
        let mut tape = Tape::new();
        let close_p = tape.leaf(Matrix::from_vec(2, 1, vec![0.1, 0.1]));
        let close_n = tape.leaf(Matrix::from_vec(2, 1, vec![0.0, 0.0]));
        let far_p = tape.leaf(Matrix::from_vec(2, 1, vec![5.0, 5.0]));
        let l_close = bpr_loss(&mut tape, close_p, close_n);
        let l_far = bpr_loss(&mut tape, far_p, close_n);
        assert!(tape.value(l_far).as_scalar() < tape.value(l_close).as_scalar());
    }

    #[test]
    fn hinge_loss_zero_when_separated() {
        let mut tape = Tape::new();
        let d_pos = tape.leaf(Matrix::from_vec(1, 1, vec![0.1]));
        let d_neg = tape.leaf(Matrix::from_vec(1, 1, vec![5.0]));
        let l = hinge_loss(&mut tape, d_pos, d_neg, 0.5);
        assert_eq!(tape.value(l).as_scalar(), 0.0);
    }

    #[test]
    fn sym_norm_rows_bounded() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let a = sym_norm_adjacency(&d, &s);
        assert_eq!(a.rows(), d.n_users + d.n_items);
        // Row sums of Â are ≤ sqrt(deg) normalization bound — just check
        // finiteness and positivity.
        for r in 0..a.rows() {
            for (_, w) in a.row_iter(r) {
                assert!(w > 0.0 && w <= 1.0);
            }
        }
    }

    #[test]
    fn item_tag_mean_rows_sum_to_one_when_tagged() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let m = item_tag_mean(&d);
        for v in 0..d.n_items {
            if !d.item_tags[v].is_empty() {
                assert!((m.row_sum(v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn unit_ball_projection() {
        let mut m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.1, 0.1]);
        unit_ball_project(&mut m);
        assert!((taxorec_geometry::vecops::norm(m.row(0)) - 1.0).abs() < 1e-9);
        assert_eq!(m.row(1), &[0.1, 0.1]);
    }
}
