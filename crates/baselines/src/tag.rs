//! Tag-based baselines: CMLF, AMF, AGCN (paper §V-A.3, "tag based
//! methods"). All three consume item tags *flat* — no hierarchy — which is
//! exactly the gap TaxoRec targets.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::{Matrix, Tape, Var};
use taxorec_core::{init, optim};
use taxorec_data::{Dataset, NegativeSampler, Recommender, Split};
use taxorec_geometry::vecops;

use crate::common::{
    bpr_loss, epoch_triplets, euclid_dist_sq, gather_indices, hinge_loss, item_tag_mean,
    sym_norm_adjacency, unit_ball_project, TrainOpts,
};

// ---------------------------------------------------------------------------
// CMLF — CML with tag features (Hsieh et al., WWW 2017, feature variant).
// ---------------------------------------------------------------------------

/// CML over tag-enriched item points: `q_v' = q_v + mean(tag embeddings)`,
/// trained with the standard CML hinge and norm constraint.
pub struct Cmlf {
    opts: TrainOpts,
    u: Matrix,
    v: Matrix,
    t: Matrix,
    item_tag: Arc<taxorec_autodiff::Csr>,
    final_items: Matrix,
}

impl Cmlf {
    /// Creates an untrained CMLF model.
    pub fn new(opts: TrainOpts) -> Self {
        Self {
            opts,
            u: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            t: Matrix::zeros(0, 0),
            item_tag: Arc::new(taxorec_autodiff::Csr::identity(1)),
            final_items: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for Cmlf {
    fn name(&self) -> &str {
        "CMLF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let d = self.opts.dim;
        self.u = init::normal_matrix(&mut rng, dataset.n_users, d, 0.1);
        self.v = init::normal_matrix(&mut rng, dataset.n_items, d, 0.1);
        self.t = init::normal_matrix(&mut rng, dataset.n_tags.max(1), d, 0.1);
        self.item_tag = item_tag_mean(dataset);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            self.final_items = self.v.clone();
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let u_leaf = tape.leaf(self.u.clone());
                let v_leaf = tape.leaf(self.v.clone());
                let t_leaf = tape.leaf(self.t.clone());
                let tag_part = tape.spmm(&self.item_tag, t_leaf);
                let items = tape.add(v_leaf, tag_part);
                let gu = tape.gather_rows(u_leaf, gather_indices(&users[lo..hi]));
                let gp = tape.gather_rows(items, gather_indices(&pos[lo..hi]));
                let gq = tape.gather_rows(items, gather_indices(&neg[lo..hi]));
                let d_pos = euclid_dist_sq(&mut tape, gu, gp);
                let d_neg = euclid_dist_sq(&mut tape, gu, gq);
                let loss = hinge_loss(&mut tape, d_pos, d_neg, self.opts.margin);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(u_leaf) {
                    optim::sgd(&mut self.u, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(v_leaf) {
                    optim::sgd(&mut self.v, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(t_leaf) {
                    optim::sgd(&mut self.t, &g, self.opts.lr);
                }
                unit_ball_project(&mut self.u);
                unit_ball_project(&mut self.v);
                unit_ball_project(&mut self.t);
            }
        }
        let mut items = self.item_tag.matmul(&self.t);
        items.add_assign(&self.v);
        self.final_items = items;
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.u.row(user as usize);
        (0..self.final_items.rows())
            .map(|v| -vecops::sqdist(urow, self.final_items.row(v)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// AMF — aspect-based matrix factorization (Hou et al., WWW 2019).
// ---------------------------------------------------------------------------

/// Matrix factorization whose item factor fuses a free part with an
/// aspect (tag) part: `x̂_uv = p_u · (q_v + Ā_v·T)`, trained with BPR.
pub struct Amf {
    opts: TrainOpts,
    p: Matrix,
    q: Matrix,
    t: Matrix,
    item_tag: Arc<taxorec_autodiff::Csr>,
    final_items: Matrix,
}

impl Amf {
    /// Creates an untrained AMF model.
    pub fn new(opts: TrainOpts) -> Self {
        Self {
            opts,
            p: Matrix::zeros(0, 0),
            q: Matrix::zeros(0, 0),
            t: Matrix::zeros(0, 0),
            item_tag: Arc::new(taxorec_autodiff::Csr::identity(1)),
            final_items: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for Amf {
    fn name(&self) -> &str {
        "AMF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let d = self.opts.dim;
        self.p = init::normal_matrix(&mut rng, dataset.n_users, d, 0.1);
        self.q = init::normal_matrix(&mut rng, dataset.n_items, d, 0.1);
        self.t = init::normal_matrix(&mut rng, dataset.n_tags.max(1), d, 0.1);
        self.item_tag = item_tag_mean(dataset);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            self.final_items = self.q.clone();
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let p_leaf = tape.leaf(self.p.clone());
                let q_leaf = tape.leaf(self.q.clone());
                let t_leaf = tape.leaf(self.t.clone());
                let tag_part = tape.spmm(&self.item_tag, t_leaf);
                let items = tape.add(q_leaf, tag_part);
                let gu = tape.gather_rows(p_leaf, gather_indices(&users[lo..hi]));
                let gp = tape.gather_rows(items, gather_indices(&pos[lo..hi]));
                let gq = tape.gather_rows(items, gather_indices(&neg[lo..hi]));
                let sp = tape.row_dot(gu, gp);
                let sn = tape.row_dot(gu, gq);
                let loss = bpr_loss(&mut tape, sp, sn);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(p_leaf) {
                    optim::sgd(&mut self.p, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(q_leaf) {
                    optim::sgd(&mut self.q, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(t_leaf) {
                    optim::sgd(&mut self.t, &g, self.opts.lr);
                }
            }
        }
        let mut items = self.item_tag.matmul(&self.t);
        items.add_assign(&self.q);
        self.final_items = items;
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.p.row(user as usize);
        (0..self.final_items.rows())
            .map(|v| vecops::dot(urow, self.final_items.row(v)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// AGCN — adaptive graph convolutional network (Wu et al., SIGIR 2020).
// ---------------------------------------------------------------------------

/// Joint item recommendation + attribute inference: item inputs fuse free
/// embeddings with projected tag attributes, LightGCN-style propagation,
/// and a joint BPR + attribute-reconstruction objective.
pub struct Agcn {
    opts: TrainOpts,
    layers: usize,
    /// Attribute-loss weight.
    attr_weight: f64,
    emb: Matrix,
    t: Matrix,
    item_tag: Arc<taxorec_autodiff::Csr>,
    final_emb: Matrix,
    n_users: usize,
}

impl Agcn {
    /// Creates an untrained AGCN model.
    pub fn new(opts: TrainOpts, layers: usize) -> Self {
        Self {
            opts,
            layers,
            attr_weight: 0.3,
            emb: Matrix::zeros(0, 0),
            t: Matrix::zeros(0, 0),
            item_tag: Arc::new(taxorec_autodiff::Csr::identity(1)),
            final_emb: Matrix::zeros(0, 0),
            n_users: 0,
        }
    }

    /// Builds the propagated stacked embedding with tag-fused item inputs.
    fn propagate(
        &self,
        tape: &mut Tape,
        e0: Var,
        t_leaf: Var,
        adj: &Arc<taxorec_autodiff::Csr>,
        n_users: usize,
        n_items: usize,
    ) -> Var {
        // Item rows get the projected tag attributes added.
        let tag_part = tape.spmm(&self.item_tag, t_leaf); // n_items × d
        let users0 = tape.slice_rows(e0, 0, n_users);
        let items0 = tape.slice_rows(e0, n_users, n_items);
        let items_in = tape.add(items0, tag_part);
        let fused = tape.concat_rows(users0, items_in);
        let mut acc = fused;
        let mut z = fused;
        for _ in 0..self.layers {
            z = tape.spmm(adj, z);
            acc = tape.add(acc, z);
        }
        tape.scale(acc, 1.0 / (self.layers + 1) as f64)
    }
}

impl Recommender for Agcn {
    fn name(&self) -> &str {
        "AGCN"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.n_users = dataset.n_users;
        let n = dataset.n_users + dataset.n_items;
        let d = self.opts.dim;
        self.emb = init::normal_matrix(&mut rng, n, d, 0.1);
        self.t = init::normal_matrix(&mut rng, dataset.n_tags.max(1), d, 0.1);
        self.item_tag = item_tag_mean(dataset);
        let adj = sym_norm_adjacency(dataset, split);
        // Dense binary attribute target for the reconstruction loss.
        let mut attr_target = Matrix::zeros(dataset.n_items, dataset.n_tags.max(1));
        for (v, tags) in dataset.item_tags.iter().enumerate() {
            for &t in tags {
                attr_target.set(v, t as usize, 1.0);
            }
        }
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            self.final_emb = self.emb.clone();
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let e0 = tape.leaf(self.emb.clone());
                let t_leaf = tape.leaf(self.t.clone());
                let e = self.propagate(
                    &mut tape,
                    e0,
                    t_leaf,
                    &adj,
                    dataset.n_users,
                    dataset.n_items,
                );
                let u_idx: Vec<usize> = users[lo..hi].iter().map(|&u| u as usize).collect();
                let p_idx: Vec<usize> = pos[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let n_idx: Vec<usize> = neg[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let gu = tape.gather_rows(e, Arc::new(u_idx));
                let gp = tape.gather_rows(e, Arc::new(p_idx));
                let gq = tape.gather_rows(e, Arc::new(n_idx));
                let sp = tape.row_dot(gu, gp);
                let sn = tape.row_dot(gu, gq);
                let l_bpr = bpr_loss(&mut tape, sp, sn);
                // Attribute inference: X̂ = E_items·Tᵀ, BCE vs. Ψ:
                // mean(softplus(X̂) − X̂ ⊙ Ψ).
                let items = tape.slice_rows(e, dataset.n_users, dataset.n_items);
                let tt = tape.leaf(self.t.transpose());
                let logits = tape.matmul(items, tt);
                let sp_term = tape.softplus(logits);
                let target = tape.leaf(attr_target.clone());
                let xy = tape.hadamard(logits, target);
                let nxy = tape.neg(xy);
                let bce = tape.add(sp_term, nxy);
                let l_attr = tape.mean_all(bce);
                let l_attr = tape.scale(l_attr, self.attr_weight);
                let loss = tape.add(l_bpr, l_attr);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(e0) {
                    optim::sgd(&mut self.emb, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(t_leaf) {
                    optim::sgd(&mut self.t, &g, self.opts.lr);
                }
            }
        }
        let mut tape = Tape::new();
        let e0 = tape.leaf(self.emb.clone());
        let t_leaf = tape.leaf(self.t.clone());
        let e = self.propagate(
            &mut tape,
            e0,
            t_leaf,
            &adj,
            dataset.n_users,
            dataset.n_items,
        );
        self.final_emb = tape.value(e).clone();
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.final_emb.row(user as usize);
        let n_items = self.final_emb.rows() - self.n_users;
        (0..n_items)
            .map(|v| vecops::dot(urow, self.final_emb.row(self.n_users + v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    fn setup() -> (Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        (d, s)
    }

    fn positives_beat_mean(model: &dyn Recommender, split: &Split) -> bool {
        let mut pos = 0.0;
        let mut np = 0usize;
        let mut all = 0.0;
        let mut na = 0usize;
        for (u, items) in split.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let s = model.scores_for_user(u as u32);
            for &v in items {
                pos += s[v as usize];
                np += 1;
            }
            all += s.iter().sum::<f64>();
            na += s.len();
        }
        pos / np as f64 > all / na as f64
    }

    #[test]
    fn cmlf_learns() {
        let (d, s) = setup();
        let mut m = Cmlf::new(TrainOpts::fast_test());
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn amf_learns() {
        let (d, s) = setup();
        let mut m = Amf::new(TrainOpts::fast_test());
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn agcn_learns() {
        let (d, s) = setup();
        let mut m = Agcn::new(
            TrainOpts {
                epochs: 10,
                ..TrainOpts::fast_test()
            },
            2,
        );
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn tag_models_work_without_tags() {
        // Degenerate dataset with zero tags must not panic.
        let mut d = generate_preset(Preset::Ciao, Scale::Tiny);
        d.n_tags = 0;
        d.item_tags = vec![Vec::new(); d.n_items];
        d.tag_names.clear();
        d.taxonomy_truth = None;
        let s = Split::standard(&d);
        let mut m = Cmlf::new(TrainOpts {
            epochs: 3,
            ..TrainOpts::fast_test()
        });
        m.fit(&d, &s);
        assert!(m.scores_for_user(0).iter().all(|x| x.is_finite()));
    }
}
