//! The 14 comparison methods of the TaxoRec evaluation (paper §V-A.3),
//! reimplemented on the shared autodiff/geometry substrate so every model
//! consumes identical splits, negative samples, and evaluation:
//!
//! | group | models | module |
//! |---|---|---|
//! | general | BPRMF, NMF, NeuMF | [`mf`] |
//! | metric learning | CML, TransCF, LRML, SML | [`metric`] |
//! | hyperbolic metric | HyperML | [`hyper`] |
//! | graph | NGCF, LightGCN, HGCF | [`graph`] |
//! | tag based | CMLF, AMF, AGCN | [`tag`] |
//!
//! [`zoo`] builds the full lineup for the Table II harness.

pub mod ablation;
pub mod common;
pub mod graph;
pub mod hyper;
pub mod metric;
pub mod mf;
pub mod tag;
pub mod zoo;

pub use ablation::CmlAgg;
pub use common::TrainOpts;
pub use graph::{Hgcf, LightGcn, Ngcf};
pub use hyper::HyperMl;
pub use metric::MetricModel;
pub use mf::{Bprmf, Neumf, Nmf};
pub use tag::{Agcn, Amf, Cmlf};
