//! The Euclidean "CML + Agg" ablation of the paper's Table III: CML's
//! triplet hinge over Euclidean distances, but with the tag-enhanced
//! aggregation mechanism transplanted into Euclidean space — item inputs
//! are enriched with their mean tag embedding (local aggregation) and the
//! stacked user/item embeddings are propagated over the bipartite graph
//! (global aggregation).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::{Matrix, Tape, Var};
use taxorec_core::{init, optim};
use taxorec_data::{Dataset, NegativeSampler, Recommender, Split};
use taxorec_geometry::vecops;

use crate::common::{
    epoch_triplets, euclid_dist_sq, hinge_loss, item_tag_mean, sym_norm_adjacency, TrainOpts,
};

/// CML + tag-enhanced aggregation in Euclidean space (Table III row 2).
pub struct CmlAgg {
    opts: TrainOpts,
    layers: usize,
    emb: Matrix,
    tags: Matrix,
    item_tag: Arc<taxorec_autodiff::Csr>,
    final_emb: Matrix,
    n_users: usize,
}

impl CmlAgg {
    /// Creates an untrained CML+Agg model with `layers` propagation steps.
    pub fn new(opts: TrainOpts, layers: usize) -> Self {
        Self {
            opts,
            layers,
            emb: Matrix::zeros(0, 0),
            tags: Matrix::zeros(0, 0),
            item_tag: Arc::new(taxorec_autodiff::Csr::identity(1)),
            final_emb: Matrix::zeros(0, 0),
            n_users: 0,
        }
    }

    fn propagate(
        &self,
        tape: &mut Tape,
        e0: Var,
        t_leaf: Var,
        adj: &Arc<taxorec_autodiff::Csr>,
        n_users: usize,
        n_items: usize,
    ) -> Var {
        let tag_part = tape.spmm(&self.item_tag, t_leaf);
        let users0 = tape.slice_rows(e0, 0, n_users);
        let items0 = tape.slice_rows(e0, n_users, n_items);
        let items_in = tape.add(items0, tag_part);
        let fused = tape.concat_rows(users0, items_in);
        let mut acc = fused;
        let mut z = fused;
        for _ in 0..self.layers {
            z = tape.spmm(adj, z);
            acc = tape.add(acc, z);
        }
        tape.scale(acc, 1.0 / (self.layers + 1) as f64)
    }
}

impl Recommender for CmlAgg {
    fn name(&self) -> &str {
        "CML+Agg"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.n_users = dataset.n_users;
        let n = dataset.n_users + dataset.n_items;
        let d = self.opts.dim;
        self.emb = init::normal_matrix(&mut rng, n, d, 0.1);
        self.tags = init::normal_matrix(&mut rng, dataset.n_tags.max(1), d, 0.1);
        self.item_tag = item_tag_mean(dataset);
        let adj = sym_norm_adjacency(dataset, split);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            self.final_emb = self.emb.clone();
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let e0 = tape.leaf(self.emb.clone());
                let t_leaf = tape.leaf(self.tags.clone());
                let e = self.propagate(
                    &mut tape,
                    e0,
                    t_leaf,
                    &adj,
                    dataset.n_users,
                    dataset.n_items,
                );
                let u_idx: Vec<usize> = users[lo..hi].iter().map(|&u| u as usize).collect();
                let p_idx: Vec<usize> = pos[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let n_idx: Vec<usize> = neg[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let gu = tape.gather_rows(e, Arc::new(u_idx));
                let gp = tape.gather_rows(e, Arc::new(p_idx));
                let gq = tape.gather_rows(e, Arc::new(n_idx));
                let d_pos = euclid_dist_sq(&mut tape, gu, gp);
                let d_neg = euclid_dist_sq(&mut tape, gu, gq);
                let loss = hinge_loss(&mut tape, d_pos, d_neg, self.opts.margin);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(e0) {
                    optim::sgd(&mut self.emb, &g, self.opts.lr);
                }
                if let Some(g) = grads.take(t_leaf) {
                    optim::sgd(&mut self.tags, &g, self.opts.lr);
                }
            }
        }
        let mut tape = Tape::new();
        let e0 = tape.leaf(self.emb.clone());
        let t_leaf = tape.leaf(self.tags.clone());
        let e = self.propagate(
            &mut tape,
            e0,
            t_leaf,
            &adj,
            dataset.n_users,
            dataset.n_items,
        );
        self.final_emb = tape.value(e).clone();
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.final_emb.row(user as usize);
        let n_items = self.final_emb.rows() - self.n_users;
        (0..n_items)
            .map(|v| -vecops::sqdist(urow, self.final_emb.row(self.n_users + v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    #[test]
    fn cml_agg_learns() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let mut m = CmlAgg::new(
            TrainOpts {
                lr: 0.5,
                ..TrainOpts::fast_test()
            },
            2,
        );
        m.fit(&d, &s);
        let mut pos = 0.0;
        let mut np = 0usize;
        let mut all = 0.0;
        let mut na = 0usize;
        for (u, items) in s.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let sc = m.scores_for_user(u as u32);
            for &v in items {
                pos += sc[v as usize];
                np += 1;
            }
            all += sc.iter().sum::<f64>();
            na += sc.len();
        }
        assert!(pos / np as f64 > all / na as f64);
        assert_eq!(m.name(), "CML+Agg");
    }
}
