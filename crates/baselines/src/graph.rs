//! Graph-based baselines: NGCF, LightGCN, HGCF (paper §V-A.3,
//! "graph based methods").

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::{Matrix, Tape, Var};
use taxorec_core::{init, optim, TaxoRec, TaxoRecConfig};
use taxorec_data::{Dataset, NegativeSampler, Recommender, Split};
use taxorec_geometry::vecops;

use crate::common::{bpr_loss, epoch_triplets, sym_norm_adjacency, TrainOpts};

// ---------------------------------------------------------------------------
// LightGCN — He et al., SIGIR 2020.
// ---------------------------------------------------------------------------

/// LightGCN: parameter-free propagation `E^{l+1} = Â E^l` over the stacked
/// user/item graph; the final representation is the mean of layers
/// `0..=L`; trained with BPR.
pub struct LightGcn {
    opts: TrainOpts,
    layers: usize,
    emb: Matrix,
    final_emb: Matrix,
    n_users: usize,
}

impl LightGcn {
    /// Creates an untrained LightGCN model with `layers` propagation steps.
    pub fn new(opts: TrainOpts, layers: usize) -> Self {
        Self {
            opts,
            layers,
            emb: Matrix::zeros(0, 0),
            final_emb: Matrix::zeros(0, 0),
            n_users: 0,
        }
    }

    fn propagate(&self, tape: &mut Tape, e0: Var, adj: &Arc<taxorec_autodiff::Csr>) -> Var {
        let mut acc = e0;
        let mut z = e0;
        for _ in 0..self.layers {
            z = tape.spmm(adj, z);
            acc = tape.add(acc, z);
        }
        tape.scale(acc, 1.0 / (self.layers + 1) as f64)
    }
}

impl Recommender for LightGcn {
    fn name(&self) -> &str {
        "LightGCN"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.n_users = dataset.n_users;
        let n = dataset.n_users + dataset.n_items;
        self.emb = init::normal_matrix(&mut rng, n, self.opts.dim, 0.1);
        let adj = sym_norm_adjacency(dataset, split);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            self.final_emb = self.emb.clone();
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let e0 = tape.leaf(self.emb.clone());
                let e = self.propagate(&mut tape, e0, &adj);
                let u_idx: Vec<usize> = users[lo..hi].iter().map(|&u| u as usize).collect();
                let p_idx: Vec<usize> = pos[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let n_idx: Vec<usize> = neg[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let gu = tape.gather_rows(e, Arc::new(u_idx));
                let gp = tape.gather_rows(e, Arc::new(p_idx));
                let gq = tape.gather_rows(e, Arc::new(n_idx));
                let sp = tape.row_dot(gu, gp);
                let sn = tape.row_dot(gu, gq);
                let loss = bpr_loss(&mut tape, sp, sn);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(e0) {
                    optim::sgd(&mut self.emb, &g, self.opts.lr);
                }
            }
        }
        // Materialize the propagated embeddings for inference.
        let mut tape = Tape::new();
        let e0 = tape.leaf(self.emb.clone());
        let e = self.propagate(&mut tape, e0, &adj);
        self.final_emb = tape.value(e).clone();
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.final_emb.row(user as usize);
        let n_items = self.final_emb.rows() - self.n_users;
        (0..n_items)
            .map(|v| vecops::dot(urow, self.final_emb.row(self.n_users + v)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// NGCF — Wang et al., SIGIR 2019.
// ---------------------------------------------------------------------------

/// Neural graph collaborative filtering: per-layer transforms
/// `E^{l+1} = LeakyReLU(ÂE^l W₁ + (ÂE^l ⊙ E^l) W₂)`, layer outputs
/// summed, BPR loss.
pub struct Ngcf {
    opts: TrainOpts,
    layers: usize,
    emb: Matrix,
    w1: Vec<Matrix>,
    w2: Vec<Matrix>,
    final_emb: Matrix,
    n_users: usize,
}

impl Ngcf {
    /// Creates an untrained NGCF model with `layers` propagation layers.
    pub fn new(opts: TrainOpts, layers: usize) -> Self {
        Self {
            opts,
            layers: layers.max(1),
            emb: Matrix::zeros(0, 0),
            w1: Vec::new(),
            w2: Vec::new(),
            final_emb: Matrix::zeros(0, 0),
            n_users: 0,
        }
    }

    fn propagate(
        &self,
        tape: &mut Tape,
        e0: Var,
        w1: &[Var],
        w2: &[Var],
        adj: &Arc<taxorec_autodiff::Csr>,
    ) -> Var {
        let mut e = e0;
        let mut acc = e0;
        for l in 0..self.layers {
            let ze = tape.spmm(adj, e);
            let a = tape.matmul(ze, w1[l]);
            let inter = tape.hadamard(ze, e);
            let b = tape.matmul(inter, w2[l]);
            let pre = tape.add(a, b);
            e = tape.leaky_relu(pre, 0.2);
            acc = tape.add(acc, e);
        }
        acc
    }
}

impl Recommender for Ngcf {
    fn name(&self) -> &str {
        "NGCF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.n_users = dataset.n_users;
        let n = dataset.n_users + dataset.n_items;
        let d = self.opts.dim;
        self.emb = init::normal_matrix(&mut rng, n, d, 0.1);
        let scale = (1.0 / d as f64).sqrt();
        self.w1 = (0..self.layers)
            .map(|_| init::normal_matrix(&mut rng, d, d, scale))
            .collect();
        self.w2 = (0..self.layers)
            .map(|_| init::normal_matrix(&mut rng, d, d, scale))
            .collect();
        let adj = sym_norm_adjacency(dataset, split);
        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let mut pairs = split.train_pairs();
        if pairs.is_empty() {
            self.final_emb = self.emb.clone();
            return;
        }
        for _ in 0..self.opts.epochs {
            let (users, pos, neg) =
                epoch_triplets(&mut pairs, &sampler, self.opts.negatives, &mut rng);
            for lo in (0..users.len()).step_by(self.opts.batch) {
                let hi = (lo + self.opts.batch).min(users.len());
                let mut tape = Tape::new();
                let e0 = tape.leaf(self.emb.clone());
                let w1: Vec<Var> = self.w1.iter().map(|w| tape.leaf(w.clone())).collect();
                let w2: Vec<Var> = self.w2.iter().map(|w| tape.leaf(w.clone())).collect();
                let e = self.propagate(&mut tape, e0, &w1, &w2, &adj);
                let u_idx: Vec<usize> = users[lo..hi].iter().map(|&u| u as usize).collect();
                let p_idx: Vec<usize> = pos[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let n_idx: Vec<usize> = neg[lo..hi]
                    .iter()
                    .map(|&v| self.n_users + v as usize)
                    .collect();
                let gu = tape.gather_rows(e, Arc::new(u_idx));
                let gp = tape.gather_rows(e, Arc::new(p_idx));
                let gq = tape.gather_rows(e, Arc::new(n_idx));
                let sp = tape.row_dot(gu, gp);
                let sn = tape.row_dot(gu, gq);
                let loss = bpr_loss(&mut tape, sp, sn);
                let mut grads = tape.backward(loss);
                if let Some(g) = grads.take(e0) {
                    optim::sgd(&mut self.emb, &g, self.opts.lr);
                }
                for (l, wv) in w1.iter().enumerate() {
                    if let Some(g) = grads.take(*wv) {
                        optim::sgd(&mut self.w1[l], &g, self.opts.lr);
                    }
                }
                for (l, wv) in w2.iter().enumerate() {
                    if let Some(g) = grads.take(*wv) {
                        optim::sgd(&mut self.w2[l], &g, self.opts.lr);
                    }
                }
            }
        }
        let mut tape = Tape::new();
        let e0 = tape.leaf(self.emb.clone());
        let w1: Vec<Var> = self.w1.iter().map(|w| tape.leaf(w.clone())).collect();
        let w2: Vec<Var> = self.w2.iter().map(|w| tape.leaf(w.clone())).collect();
        let e = self.propagate(&mut tape, e0, &w1, &w2, &adj);
        self.final_emb = tape.value(e).clone();
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let urow = self.final_emb.row(user as usize);
        let n_items = self.final_emb.rows() - self.n_users;
        (0..n_items)
            .map(|v| vecops::dot(urow, self.final_emb.row(self.n_users + v)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// HGCF — Sun et al., WWW 2021.
// ---------------------------------------------------------------------------

/// Hyperbolic graph convolutional collaborative filtering: log-map to the
/// tangent space, multi-layer propagation, exp-map back, triplet margin
/// loss with Riemannian SGD.
///
/// Architecturally this is exactly the tag-free core of TaxoRec (the
/// paper describes TaxoRec as HGCF plus the tag/taxonomy machinery), so
/// this wrapper runs [`TaxoRec`] with tags and taxonomy disabled.
pub struct Hgcf {
    inner: TaxoRec,
}

impl Hgcf {
    /// Creates an untrained HGCF model.
    ///
    /// Optimizer defaults (soft hinge, margin 1, Riemannian lr 10, no
    /// mining) come from the validation grid search recorded in
    /// EXPERIMENTS.md — the hard hinge freezes at reproduction scale.
    pub fn new(opts: TrainOpts, layers: usize) -> Self {
        let cfg = TaxoRecConfig {
            dim_ir: opts.dim,
            gcn_layers: layers,
            margin: 1.0,
            soft_hinge: true,
            lr: 10.0,
            epochs: opts.epochs.max(100),
            negatives: opts.negatives.max(4),
            hard_negative_pool: 0,
            batch_size: opts.batch,
            seed: opts.seed,
            ..TaxoRecConfig::default()
        }
        .hgcf();
        Self {
            inner: TaxoRec::new(cfg),
        }
    }
}

impl Recommender for Hgcf {
    fn name(&self) -> &str {
        "HGCF"
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        self.inner.fit(dataset, split);
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        self.inner.scores_for_user(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    fn setup() -> (Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        (d, s)
    }

    fn positives_beat_mean(model: &dyn Recommender, split: &Split) -> bool {
        let mut pos = 0.0;
        let mut np = 0usize;
        let mut all = 0.0;
        let mut na = 0usize;
        for (u, items) in split.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let s = model.scores_for_user(u as u32);
            for &v in items {
                pos += s[v as usize];
                np += 1;
            }
            all += s.iter().sum::<f64>();
            na += s.len();
        }
        pos / np as f64 > all / na as f64
    }

    #[test]
    fn lightgcn_learns() {
        let (d, s) = setup();
        let mut m = LightGcn::new(TrainOpts::fast_test(), 2);
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn ngcf_learns() {
        let (d, s) = setup();
        let mut m = Ngcf::new(
            TrainOpts {
                epochs: 30,
                lr: 0.2,
                ..TrainOpts::fast_test()
            },
            2,
        );
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
    }

    #[test]
    fn hgcf_learns() {
        let (d, s) = setup();
        let mut m = Hgcf::new(
            TrainOpts {
                epochs: 10,
                ..TrainOpts::fast_test()
            },
            2,
        );
        m.fit(&d, &s);
        assert!(positives_beat_mean(&m, &s));
        assert_eq!(m.name(), "HGCF");
    }
}
