//! Parameter initialization helpers shared by TaxoRec and the baselines.

use rand::rngs::StdRng;
use rand::RngExt;
use taxorec_autodiff::Matrix;
use taxorec_geometry::lorentz;

/// Standard-normal sample via Box–Muller (the `rand` crate ships only
/// uniform distributions without `rand_distr`).
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `rows × cols` matrix of `N(0, std²)` entries.
pub fn normal_matrix(rng: &mut StdRng, rows: usize, cols: usize, std: f64) -> Matrix {
    let data = (0..rows * cols).map(|_| normal(rng) * std).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Hyperboloid parameter matrix: spatial parts `N(0, std²)`, lifted onto
/// the manifold (ambient width = `dim + 1`). Small `std` keeps points near
/// the origin, as in HGCF's initialization.
pub fn lorentz_matrix(rng: &mut StdRng, rows: usize, dim: usize, std: f64) -> Matrix {
    let mut m = Matrix::zeros(rows, dim + 1);
    for r in 0..rows {
        let spatial: Vec<f64> = (0..dim).map(|_| normal(rng) * std).collect();
        m.row_mut(r)
            .copy_from_slice(&lorentz::from_spatial(&spatial));
    }
    m
}

/// Poincaré-ball parameter matrix: entries uniform in `(-range, range)`
/// (Nickel & Kiela initialize tag-style embeddings very close to the
/// origin).
pub fn poincare_matrix(rng: &mut StdRng, rows: usize, dim: usize, range: f64) -> Matrix {
    let data = (0..rows * dim)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * range)
        .collect();
    Matrix::from_vec(rows, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lorentz_rows_on_manifold() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = lorentz_matrix(&mut rng, 10, 5, 0.1);
        assert_eq!(m.shape(), (10, 6));
        for r in 0..10 {
            assert!(lorentz::constraint_residual(m.row(r)) < 1e-9);
        }
    }

    #[test]
    fn poincare_rows_in_ball() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = poincare_matrix(&mut rng, 10, 4, 0.1);
        for r in 0..10 {
            assert!(taxorec_geometry::vecops::norm(m.row(r)) < 1.0);
        }
    }
}
