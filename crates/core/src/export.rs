//! Export hooks for checkpointing: a self-contained snapshot of a trained
//! model, decoupled from the training machinery.
//!
//! [`ModelState`] carries exactly what inference needs — the cached
//! post-aggregation embeddings, the personalized tag weights `α_u`
//! (Eq. 16), the constructed taxonomy, and the configuration — and nothing
//! the training loop owns (tapes, graph matrices, regularizer plans).
//! `taxorec-serve` serializes this snapshot into the `.taxo` artifact and
//! rebuilds its query engine from it; [`ModelState::validate`] is the
//! shared dimension-consistency gate both sides run.

use taxorec_autodiff::Matrix;
use taxorec_taxonomy::Taxonomy;

use crate::config::TaxoRecConfig;

/// An immutable snapshot of a trained [`crate::TaxoRec`] sufficient for
/// inference: score any (user, item) pair, rank items, and explain
/// recommendations through the taxonomy.
///
/// All embedding matrices are the *final* post-aggregation values cached
/// at the end of `fit` — scoring from a `ModelState` is bit-identical to
/// scoring from the live model.
#[derive(Clone, Debug)]
pub struct ModelState {
    /// Display name of the model variant (e.g. `"TaxoRec"`, `"HGCF"`).
    pub name: String,
    /// The configuration the model was trained with.
    pub config: TaxoRecConfig,
    /// Whether the tag channel participates in scoring (aggregation on,
    /// tags on, and the dataset had tags).
    pub tags_active: bool,
    /// Final user embeddings, tag-irrelevant channel (`n_users × (D_i+1)`,
    /// Lorentz ambient coordinates).
    pub u_ir: Matrix,
    /// Final item embeddings, tag-irrelevant channel.
    pub v_ir: Matrix,
    /// Final user embeddings, tag-relevant channel (empty when
    /// `!tags_active`).
    pub u_tg: Matrix,
    /// Final item embeddings, tag-relevant channel (empty when
    /// `!tags_active`).
    pub v_tg: Matrix,
    /// Learned Poincaré tag embeddings (`n_tags × D_t`).
    pub t_p: Matrix,
    /// Personalized tag weights `α_u` (Eq. 16), one per user.
    pub alphas: Vec<f64>,
    /// The taxonomy constructed from the converged tag embeddings
    /// (`None` for ablations with λ = 0 or tagless datasets).
    pub taxonomy: Option<Taxonomy>,
}

impl ModelState {
    /// Number of users the snapshot can score.
    pub fn n_users(&self) -> usize {
        self.u_ir.rows()
    }

    /// Number of items in the catalogue.
    pub fn n_items(&self) -> usize {
        self.v_ir.rows()
    }

    /// Number of tags with learned embeddings.
    pub fn n_tags(&self) -> usize {
        self.t_p.rows()
    }

    /// Checks internal dimension consistency — embedding shapes against
    /// the config and against each other, `α_u` coverage, taxonomy tag ids
    /// within the tag universe. Run after deserializing an artifact so a
    /// truncation the checksum somehow missed still cannot produce a model
    /// that panics at query time.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.config.validate()?;
        if self.u_ir.cols() != self.config.dim_ir + 1 {
            return Err(format!(
                "u_ir has {} columns, expected dim_ir+1 = {}",
                self.u_ir.cols(),
                self.config.dim_ir + 1
            ));
        }
        if self.v_ir.cols() != self.u_ir.cols() {
            return Err(format!(
                "v_ir has {} columns, u_ir has {}",
                self.v_ir.cols(),
                self.u_ir.cols()
            ));
        }
        if self.alphas.len() != self.u_ir.rows() {
            return Err(format!(
                "{} alpha weights for {} users",
                self.alphas.len(),
                self.u_ir.rows()
            ));
        }
        if self.tags_active {
            if self.u_tg.rows() != self.u_ir.rows() {
                return Err(format!(
                    "u_tg has {} rows, u_ir has {}",
                    self.u_tg.rows(),
                    self.u_ir.rows()
                ));
            }
            if self.v_tg.rows() != self.v_ir.rows() {
                return Err(format!(
                    "v_tg has {} rows, v_ir has {}",
                    self.v_tg.rows(),
                    self.v_ir.rows()
                ));
            }
            if self.u_tg.cols() != self.config.dim_tag + 1
                || self.v_tg.cols() != self.config.dim_tag + 1
            {
                return Err(format!(
                    "tag-channel embeddings have {}/{} columns, expected dim_tag+1 = {}",
                    self.u_tg.cols(),
                    self.v_tg.cols(),
                    self.config.dim_tag + 1
                ));
            }
            if self.t_p.rows() > 0 && self.t_p.cols() != self.config.dim_tag {
                return Err(format!(
                    "tag embeddings have {} columns, expected dim_tag = {}",
                    self.t_p.cols(),
                    self.config.dim_tag
                ));
            }
        }
        if let Some(taxo) = &self.taxonomy {
            taxo.validate()?;
            let n_tags = self.t_p.rows() as u32;
            for (i, node) in taxo.nodes().iter().enumerate() {
                if let Some(&t) = node.tags.iter().find(|&&t| t >= n_tags) {
                    return Err(format!(
                        "taxonomy node {i} references tag {t}, but only {n_tags} tags exist"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaxoRec;
    use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};

    fn trained() -> TaxoRec {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 5;
        let mut m = TaxoRec::new(cfg);
        m.fit(&d, &s);
        m
    }

    #[test]
    fn exported_state_is_valid_and_scores_identically() {
        let m = trained();
        let state = m.export_state();
        assert_eq!(state.validate(), Ok(()));
        assert!(state.tags_active);
        assert!(state.taxonomy.is_some());
        assert_eq!(state.n_users(), state.alphas.len());
        // Scoring from the snapshot reproduces the live model bit-for-bit.
        for u in [0u32, 3, 7] {
            let live = m.scores_for_user(u);
            let alpha = state.config.tag_channel_gain * state.alphas[u as usize];
            for (v, &expect) in live.iter().enumerate() {
                let mut g = taxorec_geometry::lorentz::distance_sq(
                    state.u_ir.row(u as usize),
                    state.v_ir.row(v),
                );
                g += alpha
                    * taxorec_geometry::lorentz::distance_sq(
                        state.u_tg.row(u as usize),
                        state.v_tg.row(v),
                    );
                assert_eq!(-g, expect, "user {u} item {v}");
            }
        }
    }

    #[test]
    fn validate_catches_dimension_mismatches() {
        let m = trained();
        let mut state = m.export_state();
        state.alphas.pop();
        assert!(state.validate().unwrap_err().contains("alpha"));
        let mut state = m.export_state();
        state.v_tg = Matrix::zeros(1, state.v_tg.cols());
        assert!(state.validate().is_err());
    }
}
