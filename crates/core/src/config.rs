//! TaxoRec hyperparameters (paper §V-A.4 lists the tuned grid).

use taxorec_taxonomy::Seeding;

/// Full configuration of the TaxoRec model and its training loop.
///
/// Defaults follow the paper's tuned values (K=3, L=3, m≈0.1–0.2, λ=0.1)
/// at a CPU-scale embedding size; `D` in the paper is 64 total with
/// `D_t = 12` reserved for the tag-relevant part. One deviation: the
/// representativeness threshold defaults to δ=0.25 rather than the paper's
/// 0.5 — at synthetic-benchmark scale the Eq. 7 scores concentrate lower,
/// and 0.5 pushes every tag up (empty splits); the Table IV harness sweeps
/// the paper's full grid either way.
#[derive(Clone, Debug, PartialEq)]
pub struct TaxoRecConfig {
    /// Tag-irrelevant embedding dimensionality `D_i` (manifold dimension;
    /// the ambient Lorentz representation has one extra coordinate).
    pub dim_ir: usize,
    /// Tag-relevant embedding dimensionality `D_t`.
    pub dim_tag: usize,
    /// GCN propagation depth `L` (paper Eq. 13–14; optimum 3).
    pub gcn_layers: usize,
    /// Margin `m` of the LMNN hinge loss (Eq. 18).
    pub margin: f64,
    /// Taxonomy-regularization weight `λ` (Eq. 19). `0` disables both the
    /// regularizer and taxonomy construction (the Hyper+CML+Agg ablation).
    pub lambda: f64,
    /// Number of children per taxonomy split `K` (Algorithm 1).
    pub taxo_k: usize,
    /// Representativeness threshold `δ` (Algorithm 1).
    pub taxo_delta: f64,
    /// Rebuild the taxonomy every this many epochs (the paper notes the
    /// O(S) construction cost is minor; rebuilding each epoch is also
    /// affordable, this is a knob).
    pub taxo_rebuild_every: usize,
    /// Fraction of training to run *before* the first taxonomy
    /// construction. Early-training tag embeddings are still noise at this
    /// reproduction's update budget; clustering them too early freezes
    /// random structure through the Eq. 8 regularizer (at the paper's data
    /// scale, "epoch 10" already implies millions of updates, which this
    /// warmup emulates).
    pub taxo_warmup_frac: f64,
    /// Poincaré k-means seeding (ablation knob).
    pub taxo_seeding: Seeding,
    /// Maximum taxonomy depth.
    pub taxo_max_depth: usize,
    /// Stop splitting taxonomy nodes below this size.
    pub taxo_min_node: usize,
    /// Enable the tag-enhanced aggregation mechanism (local Einstein
    /// midpoint + global GCN). `false` yields the Hyper+CML ablation.
    pub use_aggregation: bool,
    /// Use tag information at all. With aggregation on but tags off the
    /// model degenerates to hyperbolic GCN collaborative filtering — i.e.
    /// the HGCF baseline (Sun et al., WWW 2021).
    pub use_tags: bool,
    /// Use the Einstein-midpoint local aggregation (`false` substitutes a
    /// naive tangent-space average — ablation of the design choice).
    pub einstein_local: bool,
    /// Learning rate of Riemannian SGD.
    pub lr: f64,
    /// Learning-rate multiplier for the tag embeddings `T^P`. Tags sit at
    /// the end of a long, heavily averaged gradient chain (midpoint → GCN
    /// → batch mean) and receive orders of magnitude fewer effective
    /// updates than at the paper's data scale; this multiplier restores a
    /// comparable update budget.
    pub lr_tag_mult: f64,
    /// Number of training epochs.
    pub epochs: usize,
    /// Negative samples per positive pair per epoch.
    pub negatives: usize,
    /// Global gain on the tag-relevant distance term of Eq. 17:
    /// `g(u,v) = d²(u_ir,v_ir) + gain·α_u·d²(u_tg,v_tg)`. The paper's
    /// formulation assumes both channels reach comparable scales; at this
    /// reproduction's update budget the tag embeddings stay close to the
    /// origin, so their squared distances are an order of magnitude
    /// smaller — the gain rebalances the channels while preserving the
    /// per-user α ordering.
    pub tag_channel_gain: f64,
    /// Replace the hard hinge `[m + g_pos − g_neg]₊` with its smooth
    /// upper bound `softplus(m + g_pos − g_neg)`. The soft tail keeps a
    /// small gradient on already-separated triplets, preventing the early
    /// freeze that hard margins exhibit at small data scale.
    pub soft_hinge: bool,
    /// Maximum geodesic distance from the hyperboloid origin for the
    /// user/item embeddings (`None` = unbounded). Bounding the embedding
    /// region keeps the squared-distance margin `m` on a fixed scale.
    pub max_radius: Option<f64>,
    /// Hard-negative mining: sample this many uniform candidates per
    /// triplet and keep the most violating one (smallest `g(u, v_q)` under
    /// the embeddings of the previous epoch). `0` disables mining. At the
    /// paper's data scale uniform negatives violate the margin often
    /// enough to keep the hinge alive; at reproduction scale mining
    /// restores that property.
    pub hard_negative_pool: usize,
    /// Triplets per minibatch.
    pub batch_size: usize,
    /// RNG seed (initialization + sampling).
    pub seed: u64,
}

impl Default for TaxoRecConfig {
    fn default() -> Self {
        Self {
            dim_ir: 32,
            dim_tag: 8,
            gcn_layers: 3,
            margin: 4.0,
            lambda: 0.1,
            taxo_k: 3,
            taxo_delta: 0.25,
            taxo_rebuild_every: 10,
            taxo_warmup_frac: 0.5,
            taxo_seeding: Seeding::PlusPlus,
            taxo_max_depth: 4,
            taxo_min_node: 4,
            use_aggregation: true,
            use_tags: true,
            einstein_local: true,
            lr: 1.0,
            lr_tag_mult: 60.0,
            epochs: 60,
            negatives: 4,
            tag_channel_gain: 1.0,
            soft_hinge: true,
            max_radius: Some(2.5),
            hard_negative_pool: 0,
            batch_size: 1024,
            seed: 42,
        }
    }
}

impl TaxoRecConfig {
    /// A faster configuration for unit/integration tests.
    pub fn fast_test() -> Self {
        Self {
            dim_ir: 12,
            dim_tag: 4,
            gcn_layers: 2,
            epochs: 15,
            taxo_rebuild_every: 5,
            batch_size: 2048,
            ..Self::default()
        }
    }

    /// The Hyper+CML ablation of Table III: hyperbolic metric learning
    /// without tags, aggregation, or taxonomy.
    pub fn ablation_hyper_cml(self) -> Self {
        Self {
            use_aggregation: false,
            lambda: 0.0,
            ..self
        }
    }

    /// The Hyper+CML+Agg ablation of Table III: aggregation on, taxonomy
    /// regularization off.
    pub fn ablation_hyper_cml_agg(self) -> Self {
        Self {
            use_aggregation: true,
            use_tags: true,
            lambda: 0.0,
            ..self
        }
    }

    /// The HGCF baseline (hyperbolic GCN collaborative filtering):
    /// aggregation on, no tags, no taxonomy.
    pub fn hgcf(self) -> Self {
        Self {
            use_aggregation: true,
            use_tags: false,
            lambda: 0.0,
            ..self
        }
    }

    /// Validates ranges; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim_ir == 0 {
            return Err("dim_ir must be positive".into());
        }
        if self.use_aggregation && self.dim_tag == 0 {
            return Err("dim_tag must be positive when aggregation is on".into());
        }
        if !(0.0..=10.0).contains(&self.margin) {
            return Err("margin out of range".into());
        }
        if self.lambda < 0.0 {
            return Err("lambda must be non-negative".into());
        }
        if self.taxo_k < 2 {
            return Err("taxo_k must be at least 2".into());
        }
        if self.lr <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(TaxoRecConfig::default().validate(), Ok(()));
        assert_eq!(TaxoRecConfig::fast_test().validate(), Ok(()));
    }

    #[test]
    fn ablations_toggle_the_right_flags() {
        let base = TaxoRecConfig::default();
        let a = base.clone().ablation_hyper_cml();
        assert!(!a.use_aggregation);
        assert_eq!(a.lambda, 0.0);
        let b = base.ablation_hyper_cml_agg();
        assert!(b.use_aggregation);
        assert_eq!(b.lambda, 0.0);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            TaxoRecConfig {
                taxo_k: 1,
                ..TaxoRecConfig::default()
            },
            TaxoRecConfig {
                lr: 0.0,
                ..TaxoRecConfig::default()
            },
            TaxoRecConfig {
                lambda: -1.0,
                ..TaxoRecConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
