//! The TaxoRec model: joint tag-taxonomy construction and tag-enhanced
//! hyperbolic metric learning (paper §IV).
//!
//! Training interleaves two processes sharing the tag embeddings `T^P`:
//!
//! 1. every `taxo_rebuild_every` epochs, Algorithm 1 re-constructs the
//!    taxonomy from the current `T^P` (Poincaré model), refreshing the
//!    Eq. 8 regularization plan;
//! 2. every minibatch, the tag-enhanced representations are assembled via
//!    the local/global aggregation (Eqs. 9–15), scored with the
//!    personalized similarity `g(u,v)` (Eqs. 16–17), and all parameters —
//!    `u^ir`, `v^ir`, `u^tg` on the hyperboloid, `T^P` in the ball — are
//!    updated by Riemannian SGD on the joint objective
//!    `L_metric + λ·L_reg` (Eqs. 18–19).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use taxorec_autodiff::{Csr, Matrix, Tape, Var};
use taxorec_data::{select_top_k, Dataset, NegativeSampler, Recommender, Split, TopKAccumulator};
use taxorec_geometry::batch::{
    fused_scores_block, fused_scores_multi, BlockCache, TagChannel, TagChannelMulti,
};
use taxorec_geometry::{convert, lorentz};
use taxorec_taxonomy::{construct_taxonomy, ConstructConfig, RegularizerPlan, Taxonomy};
use taxorec_telemetry::{span, EpochRecord, RebuildStats, TrainingMonitor};

use crate::aggregation::{global_aggregation, local_tag_aggregation};
use crate::config::TaxoRecConfig;
use crate::fit_control::{FitControl, FitReport};
use crate::graph::GraphMatrices;
use crate::init;
use crate::optim;

/// Reusable per-worker scratch buffers for the allocation-free hot paths.
///
/// Buffers are thread-local, so every `taxorec-parallel` worker (and the
/// caller thread) owns a private pool: no locking, no cross-thread
/// sharing, and a checked-out buffer never outlives its closure. Capacity
/// is retained across calls, so steady-state hot loops — scoring one user
/// against the full catalogue per eval user, per serve request — perform
/// zero heap allocations after warm-up. Lifetime rules in DESIGN.md §12.
pub mod scratch {
    use std::cell::RefCell;

    thread_local! {
        static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
    }

    /// Runs `f` with a cleared scratch `Vec<f64>` checked out of the
    /// current thread's pool (capacity retained from earlier uses) and
    /// returns the buffer to the pool afterwards. Nested calls check out
    /// distinct buffers.
    pub fn with_vec<R>(f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
        let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        buf.clear();
        let out = f(&mut buf);
        POOL.with(|p| p.borrow_mut().push(buf));
        out
    }

    /// Runs `f` with a scratch slice of exactly `len` values whose
    /// contents are **unspecified** (stale data from earlier checkouts).
    /// Callers must fully overwrite the slice before reading it — every
    /// fused-kernel user does; skipping the zero-fill saves one full
    /// buffer pass per checkout on the hot paths.
    pub fn with_buf<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let out = f(&mut buf[..len]);
        POOL.with(|p| p.borrow_mut().push(buf));
        out
    }
}

/// Items per fused-scoring chunk handed to the `taxorec-parallel` pool.
/// When scoring already runs inside a pool worker (eval's per-user
/// fan-out), the nested launch runs the chunks inline — same arithmetic,
/// no double fan-out.
const SCORE_CHUNK: usize = 4096;

/// Fused-kernel caches ([`BlockCache`]) over the final (post-aggregation)
/// item embeddings. Rebuilt by [`TaxoRec::finalize`] — the single
/// invalidation point of the DESIGN.md §12 contract.
#[derive(Default)]
struct ScoreCaches {
    ir: BlockCache,
    tg: Option<BlockCache>,
}

/// The trained (or trainable) TaxoRec model. Create with [`TaxoRec::new`],
/// train with [`Recommender::fit`], then rank with
/// [`Recommender::scores_for_user`] or inspect the constructed taxonomy.
pub struct TaxoRec {
    config: TaxoRecConfig,
    name: String,
    // Parameters (populated by fit).
    u_ir: Matrix,
    v_ir: Matrix,
    u_tg: Matrix,
    t_p: Matrix,
    // Constants of the trained instance.
    graph: Option<GraphMatrices>,
    alphas: Vec<f64>,
    // Taxonomy state.
    taxonomy: Option<Taxonomy>,
    reg_center_csr: Option<Arc<Csr>>,
    reg_center_csr_t: Option<Arc<Csr>>,
    reg_term_tags: Arc<Vec<usize>>,
    reg_term_rows: Arc<Vec<usize>>,
    // Final (post-aggregation) embeddings for inference.
    final_u_ir: Matrix,
    final_v_ir: Matrix,
    final_u_tg: Matrix,
    final_v_tg: Matrix,
    /// Fused scoring caches over `final_v_ir`/`final_v_tg`; `None` until
    /// the first [`TaxoRec::finalize`].
    score_caches: Option<ScoreCaches>,
    tags_active: bool,
    /// Mean training loss per epoch (observability/testing).
    pub loss_history: Vec<f64>,
    /// Per-epoch health records from the last `fit` (loss, gradient norm,
    /// boundary proximity, skipped batches, rebuild stats).
    pub epoch_records: Vec<EpochRecord>,
}

/// FNV-1a signature of each tag's residence group, identified by the
/// *composition* of the retained set it belongs to (node indices are not
/// stable across rebuilds). Tags absent from the taxonomy keep signature 0.
fn tag_group_signatures(taxo: &Taxonomy, n_tags: usize) -> Vec<u64> {
    let mut sig = vec![0u64; n_tags];
    for node in taxo.nodes() {
        let mut members = node.retained.clone();
        members.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &t in &members {
            h ^= u64::from(t) + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for &t in &node.retained {
            if (t as usize) < n_tags {
                sig[t as usize] = h;
            }
        }
    }
    sig
}

fn grad_sq_sum(g: &Matrix) -> f64 {
    g.data().iter().map(|x| x * x).sum()
}

struct Forward {
    tape: Tape,
    u_ir_leaf: Var,
    v_ir_leaf: Var,
    u_tg_leaf: Option<Var>,
    t_p_leaf: Option<Var>,
    u_ir: Var,
    v_ir: Var,
    u_tg: Option<Var>,
    v_tg: Option<Var>,
}

impl TaxoRec {
    /// Creates an untrained model with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: TaxoRecConfig) -> Self {
        config.validate().expect("invalid TaxoRec configuration");
        let name = if !config.use_aggregation {
            "Hyper+CML".to_string()
        } else if !config.use_tags {
            "HGCF".to_string()
        } else if config.lambda == 0.0 {
            "Hyper+CML+Agg".to_string()
        } else {
            "TaxoRec".to_string()
        };
        Self {
            config,
            name,
            u_ir: Matrix::zeros(0, 0),
            v_ir: Matrix::zeros(0, 0),
            u_tg: Matrix::zeros(0, 0),
            t_p: Matrix::zeros(0, 0),
            graph: None,
            alphas: Vec::new(),
            taxonomy: None,
            reg_center_csr: None,
            reg_center_csr_t: None,
            reg_term_tags: Arc::new(Vec::new()),
            reg_term_rows: Arc::new(Vec::new()),
            final_u_ir: Matrix::zeros(0, 0),
            final_v_ir: Matrix::zeros(0, 0),
            final_u_tg: Matrix::zeros(0, 0),
            final_v_tg: Matrix::zeros(0, 0),
            score_caches: None,
            tags_active: false,
            loss_history: Vec::new(),
            epoch_records: Vec::new(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &TaxoRecConfig {
        &self.config
    }

    /// The most recently constructed taxonomy (available after `fit` when
    /// λ > 0 and the dataset has tags).
    pub fn taxonomy(&self) -> Option<&Taxonomy> {
        self.taxonomy.as_ref()
    }

    /// The learned Poincaré tag embeddings (`n_tags × dim_tag`).
    pub fn tag_embeddings(&self) -> &Matrix {
        &self.t_p
    }

    /// Personalized tag weights `α_u` (Eq. 16), available after `fit`.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Lorentz distances from a user's tag-relevant embedding to every
    /// tag (lifted onto the hyperboloid) — the Table V "closest tags"
    /// ranking. Empty when aggregation is disabled or the dataset has no
    /// tags.
    pub fn user_tag_distances(&self, user: u32) -> Vec<f64> {
        if !self.tags_active {
            return Vec::new();
        }
        let urow = self.final_u_tg.row(user as usize);
        let dim = self.t_p.cols();
        let mut lift = vec![0.0; dim + 1];
        (0..self.t_p.rows())
            .map(|t| {
                convert::poincare_to_lorentz(self.t_p.row(t), &mut lift);
                lorentz::distance(urow, &lift)
            })
            .collect()
    }

    /// The `k` nearest tags of a user, by [`TaxoRec::user_tag_distances`].
    pub fn user_top_tags(&self, user: u32, k: usize) -> Vec<(u32, f64)> {
        let d = self.user_tag_distances(user);
        let mut idx: Vec<u32> = (0..d.len() as u32).collect();
        idx.sort_by(|&a, &b| d[a as usize].partial_cmp(&d[b as usize]).unwrap());
        idx.into_iter()
            .take(k)
            .map(|t| (t, d[t as usize]))
            .collect()
    }

    /// Builds the full forward pass on a fresh tape.
    fn forward(&self) -> Forward {
        let graph = self.graph.as_ref().expect("fit() before forward()");
        let mut tape = Tape::new();
        let u_ir_leaf = tape.leaf(self.u_ir.clone());
        let v_ir_leaf = tape.leaf(self.v_ir.clone());
        if !self.config.use_aggregation {
            return Forward {
                tape,
                u_ir_leaf,
                v_ir_leaf,
                u_tg_leaf: None,
                t_p_leaf: None,
                u_ir: u_ir_leaf,
                v_ir: v_ir_leaf,
                u_tg: None,
                v_tg: None,
            };
        }
        let (u_ir, v_ir) = global_aggregation(
            &mut tape,
            u_ir_leaf,
            v_ir_leaf,
            graph,
            self.config.gcn_layers,
        );
        if !self.tags_active {
            return Forward {
                tape,
                u_ir_leaf,
                v_ir_leaf,
                u_tg_leaf: None,
                t_p_leaf: None,
                u_ir,
                v_ir,
                u_tg: None,
                v_tg: None,
            };
        }
        let u_tg_leaf = tape.leaf(self.u_tg.clone());
        let t_p_leaf = tape.leaf(self.t_p.clone());
        let v_tg_local =
            local_tag_aggregation(&mut tape, t_p_leaf, graph, self.config.einstein_local);
        let (u_tg, v_tg) = global_aggregation(
            &mut tape,
            u_tg_leaf,
            v_tg_local,
            graph,
            self.config.gcn_layers,
        );
        Forward {
            tape,
            u_ir_leaf,
            v_ir_leaf,
            u_tg_leaf: Some(u_tg_leaf),
            t_p_leaf: Some(t_p_leaf),
            u_ir,
            v_ir,
            u_tg: Some(u_tg),
            v_tg: Some(v_tg),
        }
    }

    /// Builds `g(u, v_p)`, `g(u, v_q)` (Eq. 17) and the joint loss
    /// (Eqs. 18–19) for one triplet batch on the forward tape.
    ///
    /// Returns `(metric_loss, reg_loss)` as *separate* scalars: the tag
    /// embeddings receive the metric gradient scaled by `lr_tag_mult`
    /// (compensating the long aggregation chain) but the regularizer
    /// gradient at the plain rate — the Eq. 8 pull touches `T^P` directly
    /// and needs no compensation.
    fn build_loss(
        &self,
        f: &mut Forward,
        users: &[u32],
        pos: &[u32],
        neg: &[u32],
    ) -> (Var, Option<Var>) {
        let tape = &mut f.tape;
        let u_idx = Arc::new(users.iter().map(|&u| u as usize).collect::<Vec<_>>());
        let p_idx = Arc::new(pos.iter().map(|&v| v as usize).collect::<Vec<_>>());
        let q_idx = Arc::new(neg.iter().map(|&v| v as usize).collect::<Vec<_>>());

        let gu = tape.gather_rows(f.u_ir, Arc::clone(&u_idx));
        let gp = tape.gather_rows(f.v_ir, Arc::clone(&p_idx));
        let gq = tape.gather_rows(f.v_ir, Arc::clone(&q_idx));
        let mut g_pos = tape.lorentz_dist_sq(gu, gp);
        let mut g_neg = tape.lorentz_dist_sq(gu, gq);

        if let (Some(u_tg), Some(v_tg)) = (f.u_tg, f.v_tg) {
            let gu_t = tape.gather_rows(u_tg, Arc::clone(&u_idx));
            let gp_t = tape.gather_rows(v_tg, Arc::clone(&p_idx));
            let gq_t = tape.gather_rows(v_tg, Arc::clone(&q_idx));
            let d_pos_t = tape.lorentz_dist_sq(gu_t, gp_t);
            let d_neg_t = tape.lorentz_dist_sq(gu_t, gq_t);
            let gain = self.config.tag_channel_gain;
            let alpha = Matrix::from_vec(
                users.len(),
                1,
                users
                    .iter()
                    .map(|&u| gain * self.alphas[u as usize])
                    .collect(),
            );
            let alpha = tape.leaf(alpha);
            let a_pos = tape.mul_col_broadcast(d_pos_t, alpha);
            let a_neg = tape.mul_col_broadcast(d_neg_t, alpha);
            g_pos = tape.add(g_pos, a_pos);
            g_neg = tape.add(g_neg, a_neg);
        }

        let diff = tape.sub(g_pos, g_neg);
        let with_margin = tape.add_scalar(diff, self.config.margin);
        let hinge = if self.config.soft_hinge {
            tape.softplus(with_margin)
        } else {
            tape.relu(with_margin)
        };
        let metric = tape.mean_all(hinge);

        // Taxonomy-aware regularization (Eq. 8), when a plan exists.
        let mut reg_loss = None;
        if self.config.lambda > 0.0 && !self.reg_term_tags.is_empty() {
            if let (Some(t_p_leaf), Some(csr), Some(csr_t)) =
                (f.t_p_leaf, &self.reg_center_csr, &self.reg_center_csr_t)
            {
                let centers = tape.spmm_with_transpose(csr, Arc::clone(csr_t), t_p_leaf);
                let gt = tape.gather_rows(t_p_leaf, Arc::clone(&self.reg_term_tags));
                let gc = tape.gather_rows(centers, Arc::clone(&self.reg_term_rows));
                let dists = tape.poincare_dist(gt, gc);
                let reg = tape.mean_all(dists);
                reg_loss = Some(tape.scale(reg, self.config.lambda));
            }
        }
        (metric, reg_loss)
    }

    /// Reconstructs the taxonomy from the current tag embeddings and
    /// refreshes the Eq. 8 regularization plan. Returns rebuild statistics
    /// (node count, depth, fraction of tags whose group changed, wall time)
    /// for the training monitor.
    fn rebuild_taxonomy(&mut self, dataset: &Dataset) -> RebuildStats {
        let started = std::time::Instant::now();
        let prev_sig = self
            .taxonomy
            .as_ref()
            .map(|t| tag_group_signatures(t, dataset.n_tags));
        let cfg = ConstructConfig {
            k: self.config.taxo_k,
            delta: self.config.taxo_delta,
            min_node_size: self.config.taxo_min_node,
            max_depth: self.config.taxo_max_depth,
            seeding: self.config.taxo_seeding,
            seed: self.config.seed ^ 0x7a70,
            ..ConstructConfig::default()
        };
        let taxo = construct_taxonomy(
            self.t_p.data(),
            self.t_p.cols(),
            dataset.n_tags,
            &dataset.item_tags,
            &cfg,
        );
        let moved_frac = match prev_sig {
            Some(prev) => {
                let new_sig = tag_group_signatures(&taxo, dataset.n_tags);
                let moved = prev.iter().zip(&new_sig).filter(|(a, b)| a != b).count();
                moved as f64 / dataset.n_tags.max(1) as f64
            }
            None => 1.0,
        };
        taxorec_telemetry::gauge("taxo.rebuild.moved_frac").set(moved_frac);
        let stats = RebuildStats {
            nodes: taxo.len(),
            depth: taxo.depth(),
            moved_frac,
            duration_secs: started.elapsed().as_secs_f64(),
        };
        self.install_regularizer(taxo, dataset.n_tags);
        stats
    }

    /// Installs `taxo` as the current taxonomy and derives the Eq. 8
    /// regularization plan (CSR center matrix + term index lists) from it.
    /// Shared by [`TaxoRec::rebuild_taxonomy`] and crash-resume, which
    /// must reinstall the plan from a *deserialized* taxonomy — the live
    /// plan derives from `T^P` as of the last rebuild epoch and cannot be
    /// reconstructed from the current embeddings.
    fn install_regularizer(&mut self, taxo: Taxonomy, n_tags: usize) {
        let plan = RegularizerPlan::from_taxonomy(&taxo);
        if plan.n_centers > 0 {
            let triplets: Vec<(usize, usize, f64)> = plan.center_weights.clone();
            let csr = Arc::new(Csr::from_triplets(plan.n_centers, n_tags, &triplets));
            self.reg_center_csr_t = Some(Arc::new(csr.transpose()));
            self.reg_center_csr = Some(csr);
            self.reg_term_tags = Arc::new(plan.terms.iter().map(|&(t, _)| t as usize).collect());
            self.reg_term_rows = Arc::new(plan.terms.iter().map(|&(_, r)| r).collect());
        } else {
            self.reg_center_csr = None;
            self.reg_center_csr_t = None;
            self.reg_term_tags = Arc::new(Vec::new());
            self.reg_term_rows = Arc::new(Vec::new());
        }
        self.taxonomy = Some(taxo);
    }

    /// Snapshots the resumable training state (see
    /// [`crate::fit_control::TrainState`] for the contract).
    fn capture_train_state(
        &self,
        next_epoch: usize,
        rng: &StdRng,
        lr_scale: f64,
        rollbacks: usize,
    ) -> crate::TrainState {
        crate::TrainState {
            config: self.config.clone(),
            next_epoch,
            rng_state: rng.state(),
            lr_scale,
            rollbacks,
            u_ir: self.u_ir.clone(),
            v_ir: self.v_ir.clone(),
            u_tg: self.u_tg.clone(),
            t_p: self.t_p.clone(),
            loss_history: self.loss_history.clone(),
            taxonomy: self.taxonomy.clone(),
        }
    }

    /// Picks the most violating negative (smallest `g(u, v)`) among `pool`
    /// uniform non-positive candidates, scored with the cached
    /// previous-epoch embeddings.
    fn mine_hard_negative(
        &self,
        user: u32,
        sampler: &NegativeSampler,
        pool: usize,
        rng: &mut StdRng,
    ) -> u32 {
        let u = user as usize;
        let urow_ir = self.final_u_ir.row(u);
        let alpha = self.config.tag_channel_gain * self.alphas.get(u).copied().unwrap_or(0.0);
        let mut best = sampler.sample(user, rng);
        let mut best_g = f64::INFINITY;
        for i in 0..pool {
            let v = if i == 0 {
                best
            } else {
                sampler.sample(user, rng)
            };
            let mut g = lorentz::distance_sq(urow_ir, self.final_v_ir.row(v as usize));
            if self.tags_active && self.final_u_tg.rows() > 0 {
                g += alpha
                    * lorentz::distance_sq(self.final_u_tg.row(u), self.final_v_tg.row(v as usize));
            }
            if g < best_g {
                best_g = g;
                best = v;
            }
        }
        best
    }

    /// Snapshots everything inference needs — final embeddings, `α_u`,
    /// taxonomy, config — into a [`crate::ModelState`] for checkpointing
    /// (the `taxorec-serve` `.taxo` artifact). Only meaningful after
    /// [`Recommender::fit`].
    pub fn export_state(&self) -> crate::ModelState {
        crate::ModelState {
            name: self.name.clone(),
            config: self.config.clone(),
            tags_active: self.tags_active,
            u_ir: self.final_u_ir.clone(),
            v_ir: self.final_v_ir.clone(),
            u_tg: self.final_u_tg.clone(),
            v_tg: self.final_v_tg.clone(),
            t_p: self.t_p.clone(),
            alphas: self.alphas.clone(),
            taxonomy: self.taxonomy.clone(),
        }
    }

    /// Fault-tolerant [`Recommender::fit`]: the same training loop with
    /// optional crash-resume, periodic checkpointing, and divergence
    /// recovery. `fit` is exactly `fit_controlled` with
    /// [`FitControl::default`].
    ///
    /// * **Resume** (`ctl.resume`): continues bit-identically from a
    ///   [`crate::TrainState`] captured by a previous run with the same
    ///   configuration, dataset, and split.
    /// * **Checkpoints** (`ctl.checkpoint_every` / `ctl.checkpoint_sink`):
    ///   after every N-th completed epoch the resumable state is handed to
    ///   the sink; sink failures are warned and counted, never fatal.
    /// * **Divergence recovery**: a diverged epoch (non-finite mean loss,
    ///   or a majority of batches skipped as non-finite) is rolled back to
    ///   its start-of-epoch snapshot and re-run with the learning rate
    ///   scaled by `ctl.lr_backoff`, up to `ctl.max_rollbacks` times;
    ///   after that training stops at the last healthy parameters.
    ///
    /// Fault injection: each epoch probes the `train.epoch` site, so
    /// `TAXOREC_FAULT=nan@train.epoch:5` forces epoch 5's loss to NaN and
    /// exercises the rollback path deterministically.
    ///
    /// # Panics
    /// Panics if a resume state fails validation or does not match the
    /// dataset/config (the same error class as an invalid configuration).
    pub fn fit_controlled(
        &mut self,
        dataset: &Dataset,
        split: &Split,
        mut ctl: FitControl<'_>,
    ) -> FitReport {
        let _fit_span = span!("train.fit");
        // The run's trace context: the same mechanism as a serve request,
        // so TAXOREC_TRACE renders training epochs and their stage
        // breakdown alongside (or instead of) request traces.
        let fit_ctx = taxorec_telemetry::trace::mint();
        let _fit_trace = taxorec_telemetry::trace::scope(fit_ctx);
        let fit_started = Instant::now();
        let cfg = self.config.clone();
        let mut monitor = TrainingMonitor::new(&self.name);
        self.tags_active = cfg.use_aggregation && cfg.use_tags && dataset.n_tags > 0;
        self.graph = Some(GraphMatrices::build(dataset, split));
        self.alphas = dataset.alpha_weights(&split.train);
        self.epoch_records.clear();

        let mut rng;
        let mut lr_scale = 1.0f64;
        let mut rollbacks = 0usize;
        let start_epoch;
        match ctl.resume.take() {
            Some(state) => {
                state
                    .validate()
                    .unwrap_or_else(|e| panic!("invalid resume state: {e}"));
                assert!(
                    state.config == cfg,
                    "resume state was trained with a different configuration"
                );
                assert!(
                    state.u_ir.rows() == dataset.n_users
                        && state.v_ir.rows() == dataset.n_items
                        && state.t_p.rows() == dataset.n_tags.max(1),
                    "resume state does not match the dataset shape"
                );
                rng = StdRng::from_state(state.rng_state);
                lr_scale = state.lr_scale;
                rollbacks = state.rollbacks;
                start_epoch = state.next_epoch;
                self.u_ir = state.u_ir;
                self.v_ir = state.v_ir;
                self.u_tg = state.u_tg;
                self.t_p = state.t_p;
                self.loss_history = state.loss_history;
                match state.taxonomy {
                    Some(taxo) => self.install_regularizer(taxo, dataset.n_tags),
                    None => self.taxonomy = None,
                }
                taxorec_telemetry::counter("resilience.resume").inc(1);
                taxorec_telemetry::sink::info(&format!(
                    "{}: resuming at epoch {start_epoch}/{} (lr_scale {lr_scale})",
                    self.name, cfg.epochs
                ));
            }
            None => {
                rng = StdRng::seed_from_u64(cfg.seed);
                start_epoch = 0;
                self.u_ir = init::lorentz_matrix(&mut rng, dataset.n_users, cfg.dim_ir, 0.1);
                self.v_ir = init::lorentz_matrix(&mut rng, dataset.n_items, cfg.dim_ir, 0.1);
                self.u_tg = init::lorentz_matrix(&mut rng, dataset.n_users, cfg.dim_tag, 0.1);
                // Tag embeddings start very close to the origin (Nickel &
                // Kiela's Poincaré init) so that gradient-driven
                // co-occurrence structure dominates the random offsets.
                self.t_p =
                    init::poincare_matrix(&mut rng, dataset.n_tags.max(1), cfg.dim_tag, 0.001);
                self.loss_history.clear();
            }
        }
        let mut report = FitReport {
            start_epoch,
            final_lr_scale: lr_scale,
            ..FitReport::default()
        };

        let sampler = NegativeSampler::new(dataset.n_items, split.train.clone());
        let base_pairs = split.train_pairs();
        if base_pairs.is_empty() {
            self.finalize();
            taxorec_telemetry::trace::flush();
            taxorec_telemetry::sink::flush();
            return report;
        }
        let warmup = (cfg.epochs as f64 * cfg.taxo_warmup_frac) as usize;
        // Triplet assembly buffers, reused across every batch of every
        // epoch: they grow to one batch's size once and are then cleared
        // per batch — zero steady-state allocation in the pair loop.
        let mut users: Vec<u32> = Vec::new();
        let mut pos: Vec<u32> = Vec::new();
        let mut neg: Vec<u32> = Vec::new();
        let mut epoch = start_epoch;
        while epoch < cfg.epochs {
            // Start-of-epoch snapshot: the rollback target if this epoch
            // diverges. RNG state included so the re-run replays the same
            // shuffle and negative draws (under the backed-off rate).
            let snap_params = (
                self.u_ir.clone(),
                self.v_ir.clone(),
                self.u_tg.clone(),
                self.t_p.clone(),
            );
            let snap_rng = rng.state();
            let snap_losses = self.loss_history.len();

            let epoch_started = Instant::now();
            // Stage breakdown accumulators: wall time across the epoch's
            // batches split into aggregation (forward), scoring (loss +
            // backward), and update (Riemannian SGD steps).
            let mut agg_time = Duration::ZERO;
            let mut score_time = Duration::ZERO;
            let mut update_time = Duration::ZERO;
            monitor.begin_epoch(epoch);
            // Refresh the post-aggregation embeddings once per epoch for
            // hard-negative mining (stale-but-cheap, standard practice).
            if cfg.hard_negative_pool > 0 {
                self.finalize();
            }
            if self.tags_active
                && cfg.lambda > 0.0
                && epoch >= warmup.max(1)
                && (epoch - warmup).is_multiple_of(cfg.taxo_rebuild_every.max(1))
            {
                let stats = self.rebuild_taxonomy(dataset);
                monitor.observe_rebuild(stats);
            }
            // Shuffle a fresh copy: the epoch's pair order depends only
            // on the RNG state at its start, never on earlier epochs'
            // in-place permutations — this is what makes a resumed run
            // replay the same order from the restored RNG state.
            let mut pairs = base_pairs.clone();
            pairs.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut n_batches = 0usize;
            let mut nan_batches = 0usize;
            for chunk in pairs.chunks(cfg.batch_size.max(1)) {
                users.clear();
                pos.clear();
                neg.clear();
                for &(u, v) in chunk {
                    for _ in 0..cfg.negatives.max(1) {
                        users.push(u);
                        pos.push(v);
                        neg.push(if cfg.hard_negative_pool > 0 {
                            self.mine_hard_negative(u, &sampler, cfg.hard_negative_pool, &mut rng)
                        } else {
                            sampler.sample(u, &mut rng)
                        });
                    }
                }
                let stage_t0 = Instant::now();
                let mut f = self.forward();
                let stage_t1 = Instant::now();
                agg_time += stage_t1 - stage_t0;
                let (metric_loss, reg_loss) = self.build_loss(&mut f, &users, &pos, &neg);
                let batch_loss = f.tape.value(metric_loss).as_scalar()
                    + reg_loss.map(|r| f.tape.value(r).as_scalar()).unwrap_or(0.0);
                if !batch_loss.is_finite() {
                    // A non-finite loss would poison both the parameters
                    // (through backward) and the epoch mean: skip the
                    // update, counted and warned through the monitor.
                    monitor.observe_batch(batch_loss, 0.0);
                    nan_batches += 1;
                    continue;
                }
                let mut grads = f.tape.backward(metric_loss);
                let g_u_ir = grads.take(f.u_ir_leaf);
                let g_v_ir = grads.take(f.v_ir_leaf);
                let g_u_tg = f.u_tg_leaf.and_then(|leaf| grads.take(leaf));
                let g_t_p = f.t_p_leaf.and_then(|leaf| grads.take(leaf));
                let g_t_p_reg = match (f.t_p_leaf, reg_loss) {
                    (Some(leaf), Some(reg)) => f.tape.backward(reg).take(leaf),
                    _ => None,
                };
                let grad_norm = [&g_u_ir, &g_v_ir, &g_u_tg, &g_t_p, &g_t_p_reg]
                    .into_iter()
                    .filter_map(|g| g.as_ref().map(grad_sq_sum))
                    .sum::<f64>()
                    .sqrt();
                let stage_t2 = Instant::now();
                score_time += stage_t2 - stage_t1;
                if !monitor.observe_batch(batch_loss, grad_norm) {
                    nan_batches += 1;
                    continue;
                }
                epoch_loss += batch_loss;
                n_batches += 1;
                let lr = cfg.lr * lr_scale;
                if let Some(g) = g_u_ir {
                    optim::rsgd_lorentz(&mut self.u_ir, &g, lr);
                }
                if let Some(g) = g_v_ir {
                    optim::rsgd_lorentz(&mut self.v_ir, &g, lr);
                }
                if let Some(g) = g_u_tg {
                    optim::rsgd_lorentz(&mut self.u_tg, &g, lr);
                }
                if let Some(r) = cfg.max_radius {
                    optim::clip_lorentz_radius(&mut self.u_ir, r);
                    optim::clip_lorentz_radius(&mut self.v_ir, r);
                    if self.tags_active {
                        optim::clip_lorentz_radius(&mut self.u_tg, r);
                    }
                }
                if let Some(g) = g_t_p {
                    optim::rsgd_poincare(&mut self.t_p, &g, lr * cfg.lr_tag_mult);
                }
                // The Eq. 8 pull acts on T^P directly: plain rate.
                if let Some(g) = g_t_p_reg {
                    optim::rsgd_poincare(&mut self.t_p, &g, lr);
                }
                update_time += stage_t2.elapsed();
            }
            // Boundary proximity: the Poincaré tag embeddings degrade
            // numerically as ‖t‖ → 1, so the max row norm is the early
            // warning for an exploding tag channel.
            let mut max_norm = 0.0f64;
            for r in 0..self.t_p.rows() {
                let sq: f64 = self.t_p.row(r).iter().map(|x| x * x).sum();
                max_norm = max_norm.max(sq.sqrt());
            }
            monitor.observe_boundary(max_norm);
            monitor.observe_stages(
                agg_time.as_secs_f64(),
                score_time.as_secs_f64(),
                update_time.as_secs_f64(),
            );
            let epoch_record = monitor.end_epoch().clone();
            // When this run is sampled, lay the epoch out as a span with
            // its three stages as sequential children (per-batch stage
            // slices interleave in reality; the aggregate layout shows
            // where the epoch's time went at a glance).
            if fit_ctx.sampled {
                let epoch_end = Instant::now();
                let epoch_ctx = taxorec_telemetry::trace::emit_span_at(
                    "train.epoch",
                    fit_ctx,
                    epoch_started,
                    epoch_end,
                );
                let mut stage_start = epoch_started;
                for (name, dur) in [
                    ("aggregation", agg_time),
                    ("scoring", score_time),
                    ("update", update_time),
                ] {
                    let stage_end = (stage_start + dur).min(epoch_end);
                    taxorec_telemetry::trace::emit_span_at(name, epoch_ctx, stage_start, stage_end);
                    stage_start = stage_end;
                }
            }

            let mut epoch_mean = epoch_loss / n_batches.max(1) as f64;
            if taxorec_resilience::inject_nan("train.epoch") {
                epoch_mean = f64::NAN;
            }
            let total = n_batches + nan_batches;
            let diverged = !epoch_mean.is_finite() || (total > 0 && nan_batches * 2 > total);
            if diverged {
                rollbacks += 1;
                report.rollbacks += 1;
                taxorec_telemetry::counter("resilience.rollback").inc(1);
                // A divergence is an incident: capture the recent-event
                // history before the retry overwrites it.
                taxorec_telemetry::flight_event!(
                    "train.rollback",
                    fit_ctx.trace_id,
                    epoch as i64,
                    epoch_mean
                );
                taxorec_telemetry::flight::dump("train.rollback");
                // Restore the start-of-epoch snapshot either way: the
                // parameters after a diverged epoch are not trustworthy.
                let (u_ir, v_ir, u_tg, t_p) = snap_params;
                self.u_ir = u_ir;
                self.v_ir = v_ir;
                self.u_tg = u_tg;
                self.t_p = t_p;
                rng = StdRng::from_state(snap_rng);
                self.loss_history.truncate(snap_losses);
                if rollbacks > ctl.max_rollbacks {
                    taxorec_telemetry::sink::warn(&format!(
                        "{}: epoch {epoch} diverged; rollback budget ({}) exhausted — \
                         stopping at the last healthy parameters",
                        self.name, ctl.max_rollbacks
                    ));
                    report.gave_up = true;
                    break;
                }
                lr_scale *= ctl.lr_backoff;
                taxorec_telemetry::sink::warn(&format!(
                    "{}: epoch {epoch} diverged (mean {epoch_mean}, {nan_batches}/{total} \
                     non-finite batches); rolled back, retrying with lr_scale {lr_scale}",
                    self.name
                ));
                continue;
            }
            self.loss_history.push(epoch_mean);
            report.epochs_run += 1;
            if let Some(cb) = ctl.on_epoch.as_mut() {
                cb(&epoch_record);
            }
            if ctl.checkpoint_every > 0 && (epoch + 1).is_multiple_of(ctl.checkpoint_every) {
                if let Some(sink) = ctl.checkpoint_sink.as_mut() {
                    let state = self.capture_train_state(epoch + 1, &rng, lr_scale, rollbacks);
                    match sink(&state) {
                        Ok(()) => {
                            report.checkpoints_written += 1;
                            taxorec_telemetry::counter("resilience.checkpoint.written").inc(1);
                        }
                        Err(e) => {
                            report.checkpoint_failures += 1;
                            taxorec_telemetry::counter("resilience.checkpoint.failed").inc(1);
                            taxorec_telemetry::sink::warn(&format!(
                                "{}: checkpoint after epoch {epoch} failed (training \
                                 continues): {e}",
                                self.name
                            ));
                        }
                    }
                }
            }
            if !ctl.epoch_throttle.is_zero() {
                std::thread::sleep(ctl.epoch_throttle);
            }
            epoch += 1;
        }
        // Final taxonomy from the converged embeddings (for RQ4/RQ5
        // outputs), then cache inference embeddings.
        if self.tags_active && cfg.lambda > 0.0 && !report.gave_up {
            self.rebuild_taxonomy(dataset);
        }
        self.epoch_records = monitor.records().to_vec();
        self.finalize();
        report.final_lr_scale = lr_scale;
        // The run's root span, then flush both the trace export and any
        // file-backed JSONL sink so short runs don't lose tail events.
        taxorec_telemetry::trace::emit_root_at("train.fit", fit_ctx, fit_started, Instant::now());
        taxorec_telemetry::trace::flush();
        taxorec_telemetry::sink::flush();
        report
    }

    /// Runs one forward pass and caches the final embeddings for
    /// inference, then refreshes the fused scoring caches over them.
    fn finalize(&mut self) {
        let f = self.forward();
        self.final_u_ir = f.tape.value(f.u_ir).clone();
        self.final_v_ir = f.tape.value(f.v_ir).clone();
        if let (Some(u_tg), Some(v_tg)) = (f.u_tg, f.v_tg) {
            self.final_u_tg = f.tape.value(u_tg).clone();
            self.final_v_tg = f.tape.value(v_tg).clone();
        }
        self.rebuild_score_caches();
    }

    /// Rebuilds the [`BlockCache`]s from the final embeddings that
    /// [`TaxoRec::finalize`] just refreshed. `finalize` is the only writer
    /// of `final_v_ir`/`final_v_tg` and it runs after every RSGD epoch
    /// that needs fresh inference embeddings (hard-negative mining, end of
    /// fit), so the caches can never observe stale rows — the invalidation
    /// contract of DESIGN.md §12. Rebuilds reuse the caches' allocations.
    fn rebuild_score_caches(&mut self) {
        if self.final_v_ir.rows() == 0 {
            self.score_caches = None;
            return;
        }
        let caches = self.score_caches.get_or_insert_with(ScoreCaches::default);
        caches
            .ir
            .rebuild(self.final_v_ir.data(), self.final_v_ir.cols());
        if self.tags_active && self.final_v_tg.rows() > 0 {
            caches
                .tg
                .get_or_insert_with(BlockCache::default)
                .rebuild(self.final_v_tg.data(), self.final_v_tg.cols());
        } else {
            caches.tg = None;
        }
    }
}

impl Recommender for TaxoRec {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        self.fit_controlled(dataset, split, FitControl::default());
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let mut out = Vec::new();
        self.scores_into(user, &mut out);
        out
    }

    /// Fused scoring: one [`fused_scores_block`] pass per [`SCORE_CHUNK`]
    /// items over the cached block layout, bit-identical to the scalar
    /// per-item loop it replaced (see `tests/parallel_determinism.rs`).
    fn scores_into(&self, user: u32, out: &mut Vec<f64>) {
        let u = user as usize;
        let alpha = self.config.tag_channel_gain * self.alphas.get(u).copied().unwrap_or(0.0);
        let Some(caches) = &self.score_caches else {
            // No caches means `finalize` never ran (empty catalogue or an
            // unfitted model): the scalar loop, as before the fused path.
            let urow_ir = self.final_u_ir.row(u);
            let n_items = self.final_v_ir.rows();
            out.clear();
            out.reserve(n_items);
            for v in 0..n_items {
                let mut g = lorentz::distance_sq(urow_ir, self.final_v_ir.row(v));
                if self.tags_active {
                    g += alpha
                        * lorentz::distance_sq(self.final_u_tg.row(u), self.final_v_tg.row(v));
                }
                out.push(-g);
            }
            return;
        };
        let urow_ir = self.final_u_ir.row(u);
        let u_tg = caches.tg.as_ref().map(|_| self.final_u_tg.row(u));
        let n_items = caches.ir.rows();
        // Every element is overwritten below, so skip the zero-refill
        // when a reused buffer already has the right length.
        if out.len() != n_items {
            out.clear();
            out.resize(n_items, 0.0);
        }
        taxorec_parallel::par_chunks("core.scores", &mut out[..], SCORE_CHUNK, |ci, slice| {
            let lo = ci * SCORE_CHUNK;
            let hi = lo + slice.len();
            match (&caches.tg, u_tg) {
                (Some(tg_cache), Some(anchor)) => scratch::with_buf(slice.len(), |scr| {
                    fused_scores_block(
                        &caches.ir,
                        urow_ir,
                        Some(TagChannel {
                            cache: tg_cache,
                            anchor,
                            alpha,
                        }),
                        lo,
                        hi,
                        scr,
                        slice,
                    );
                }),
                _ => fused_scores_block(&caches.ir, urow_ir, None, lo, hi, &mut [], slice),
            }
        });
    }

    /// Multi-anchor fused scoring: one [`fused_scores_multi`] pass scores
    /// the whole user block while streaming the item panels once, so a
    /// block of `B` users pays the item-side memory traffic once instead
    /// of `B` times. Each user's row stays bit-identical to
    /// [`Recommender::scores_into`] (the batched kernels preserve the
    /// per-pair arithmetic order; see `tests/parallel_determinism.rs`).
    fn scores_block_into(&self, users: &[u32], out: &mut Vec<f64>) {
        let Some(caches) = &self.score_caches else {
            // No caches means `finalize` never ran: fall back to the
            // per-user scalar path, row by row.
            out.clear();
            scratch::with_vec(|row| {
                for &u in users {
                    self.scores_into(u, row);
                    out.extend_from_slice(row);
                }
            });
            return;
        };
        let n_items = caches.ir.rows();
        let b = users.len();
        // Every element is overwritten below, so skip the zero-refill
        // when a reused buffer already has the right length.
        if out.len() != b * n_items {
            out.clear();
            out.resize(b * n_items, 0.0);
        }
        if b == 0 || n_items == 0 {
            return;
        }
        let anchors_ir: Vec<&[f64]> = users
            .iter()
            .map(|&u| self.final_u_ir.row(u as usize))
            .collect();
        match &caches.tg {
            Some(tg_cache) => {
                let anchors_tg: Vec<&[f64]> = users
                    .iter()
                    .map(|&u| self.final_u_tg.row(u as usize))
                    .collect();
                let alphas: Vec<f64> = users
                    .iter()
                    .map(|&u| {
                        self.config.tag_channel_gain
                            * self.alphas.get(u as usize).copied().unwrap_or(0.0)
                    })
                    .collect();
                scratch::with_buf(
                    b * n_items.min(taxorec_geometry::batch::FUSED_ITEM_CHUNK),
                    |scr| {
                        fused_scores_multi(
                            &caches.ir,
                            &anchors_ir,
                            Some(TagChannelMulti {
                                cache: tg_cache,
                                anchors: &anchors_tg,
                                alphas: &alphas,
                            }),
                            0,
                            n_items,
                            scr,
                            out,
                        );
                    },
                );
            }
            None => fused_scores_multi(&caches.ir, &anchors_ir, None, 0, n_items, &mut [], out),
        }
    }

    /// Streaming block ranking: scores the user block one
    /// [`FUSED_ITEM_CHUNK`]-wide catalogue slice at a time and feeds each
    /// slice through per-user [`TopKAccumulator`]s while its scores are
    /// still cache-hot, so ranking a block never materializes
    /// `B × n_items` score rows — per-worker scratch stays a few hundred
    /// KiB regardless of catalogue size. Scores are computed by the same
    /// [`fused_scores_multi`] kernel over sub-ranges (per-pair arithmetic
    /// is range-independent) and items are offered in ascending id order,
    /// so by the accumulator contract the result is exactly the default
    /// full-row ranking.
    ///
    /// [`FUSED_ITEM_CHUNK`]: taxorec_geometry::batch::FUSED_ITEM_CHUNK
    fn top_k_block(
        &self,
        users: &[u32],
        k: usize,
        exclude: &dyn Fn(usize, u32) -> bool,
    ) -> Vec<Vec<(u32, f64)>> {
        let Some(caches) = &self.score_caches else {
            // No caches means `finalize` never ran: the default full-row
            // path over the scalar fallback.
            let mut scores = Vec::new();
            self.scores_block_into(users, &mut scores);
            let n = if users.is_empty() {
                0
            } else {
                scores.len() / users.len()
            };
            return (0..users.len())
                .map(|pos| {
                    select_top_k(&scores[pos * n..(pos + 1) * n], k, |i| {
                        exclude(pos, i as u32)
                    })
                })
                .collect();
        };
        let n_items = caches.ir.rows();
        let b = users.len();
        if b == 0 || n_items == 0 {
            return vec![Vec::new(); b];
        }
        let anchors_ir: Vec<&[f64]> = users
            .iter()
            .map(|&u| self.final_u_ir.row(u as usize))
            .collect();
        let tg = caches.tg.as_ref().map(|tg_cache| {
            let anchors_tg: Vec<&[f64]> = users
                .iter()
                .map(|&u| self.final_u_tg.row(u as usize))
                .collect();
            let alphas: Vec<f64> = users
                .iter()
                .map(|&u| {
                    self.config.tag_channel_gain
                        * self.alphas.get(u as usize).copied().unwrap_or(0.0)
                })
                .collect();
            (tg_cache, anchors_tg, alphas)
        });
        let chunk = taxorec_geometry::batch::FUSED_ITEM_CHUNK;
        let buf_len = b * n_items.min(chunk);
        let mut accs: Vec<TopKAccumulator> = (0..b).map(|_| TopKAccumulator::new(k)).collect();
        scratch::with_buf(buf_len, |buf| {
            scratch::with_buf(if tg.is_some() { buf_len } else { 0 }, |scr| {
                let mut lo = 0;
                while lo < n_items {
                    let hi = (lo + chunk).min(n_items);
                    let m = hi - lo;
                    let channel = tg.as_ref().map(|(cache, anchors, alphas)| TagChannelMulti {
                        cache,
                        anchors: anchors.as_slice(),
                        alphas: alphas.as_slice(),
                    });
                    let scr_len = if tg.is_some() { b * m } else { 0 };
                    fused_scores_multi(
                        &caches.ir,
                        &anchors_ir,
                        channel,
                        lo,
                        hi,
                        &mut scr[..scr_len],
                        &mut buf[..b * m],
                    );
                    for (pos, acc) in accs.iter_mut().enumerate() {
                        let row = &buf[pos * m..(pos + 1) * m];
                        for (i, &score) in row.iter().enumerate() {
                            let item = (lo + i) as u32;
                            if !exclude(pos, item) {
                                acc.push(item, score);
                            }
                        }
                    }
                    lo = hi;
                }
            });
        });
        accs.into_iter().map(|a| a.into_sorted()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    fn tiny_setup() -> (Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        (d, s)
    }

    #[test]
    fn fit_produces_finite_embeddings_and_decreasing_loss() {
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 10;
        let mut m = TaxoRec::new(cfg);
        m.fit(&d, &s);
        assert!(m.final_u_ir.all_finite());
        assert!(m.final_v_ir.all_finite());
        assert!(m.final_u_tg.all_finite());
        assert!(m.final_v_tg.all_finite());
        let first = m.loss_history[0];
        let last = *m.loss_history.last().unwrap();
        assert!(last < first, "loss should drop: {first} → {last}");
    }

    #[test]
    fn trained_model_ranks_positives_above_random() {
        let (d, s) = tiny_setup();
        let mut m = TaxoRec::new(TaxoRecConfig::fast_test());
        m.fit(&d, &s);
        // Mean score of training positives must exceed the global mean.
        let mut pos_total = 0.0;
        let mut pos_n = 0usize;
        let mut all_total = 0.0;
        let mut all_n = 0usize;
        for (u, items) in s.train.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let scores = m.scores_for_user(u as u32);
            for &v in items {
                pos_total += scores[v as usize];
                pos_n += 1;
            }
            all_total += scores.iter().sum::<f64>();
            all_n += scores.len();
        }
        let pos_mean = pos_total / pos_n as f64;
        let all_mean = all_total / all_n as f64;
        assert!(
            pos_mean > all_mean,
            "positives {pos_mean} vs mean {all_mean}"
        );
    }

    #[test]
    fn taxonomy_is_constructed_during_fit() {
        let (d, s) = tiny_setup();
        let mut m = TaxoRec::new(TaxoRecConfig::fast_test());
        m.fit(&d, &s);
        let taxo = m.taxonomy().expect("taxonomy built when λ>0");
        assert!(!taxo.is_empty());
        assert_eq!(taxo.validate(), Ok(()));
    }

    #[test]
    fn ablation_without_aggregation_still_trains() {
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test().ablation_hyper_cml();
        cfg.epochs = 5;
        let mut m = TaxoRec::new(cfg);
        assert_eq!(m.name(), "Hyper+CML");
        m.fit(&d, &s);
        assert!(m.taxonomy().is_none());
        assert_eq!(m.scores_for_user(0).len(), d.n_items);
    }

    #[test]
    fn user_top_tags_returns_sorted_distances() {
        let (d, s) = tiny_setup();
        let mut m = TaxoRec::new(TaxoRecConfig::fast_test());
        m.fit(&d, &s);
        let top = m.user_top_tags(0, 4);
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn monitor_records_every_epoch() {
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 3;
        let mut m = TaxoRec::new(cfg);
        m.fit(&d, &s);
        assert_eq!(m.epoch_records.len(), 3);
        for (i, r) in m.epoch_records.iter().enumerate() {
            assert_eq!(r.epoch, i);
            assert!(r.mean_loss.is_finite());
            assert!(r.mean_grad_norm > 0.0, "gradient flowed in epoch {i}");
            assert!(
                r.boundary_max_norm > 0.0 && r.boundary_max_norm < 1.0,
                "tag embeddings stay inside the ball: {}",
                r.boundary_max_norm
            );
            assert!(r.n_batches > 0);
            assert_eq!(r.nan_batches, 0, "healthy run skips nothing");
            assert!(r.duration_secs >= 0.0);
        }
        // loss_history and the monitor agree on the per-epoch means.
        for (h, r) in m.loss_history.iter().zip(&m.epoch_records) {
            assert!((h - r.mean_loss).abs() < 1e-12);
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        use std::cell::RefCell;
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 6;

        // Reference run: straight through, checkpointing every 2 epochs.
        let states: RefCell<Vec<crate::TrainState>> = RefCell::new(Vec::new());
        let mut a = TaxoRec::new(cfg.clone());
        let report = a.fit_controlled(
            &d,
            &s,
            FitControl {
                checkpoint_every: 2,
                checkpoint_sink: Some(Box::new(|st: &crate::TrainState| {
                    states.borrow_mut().push(st.clone());
                    Ok(())
                })),
                ..FitControl::default()
            },
        );
        assert_eq!(report.epochs_run, 6);
        assert_eq!(report.checkpoints_written, 3);
        assert_eq!(report.rollbacks, 0);
        let states = states.into_inner();
        assert_eq!(
            states.iter().map(|s| s.next_epoch).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );

        // Resumed run: fresh model continues from the epoch-4 state.
        let mid = states[1].clone();
        assert_eq!(mid.validate(), Ok(()));
        assert!(mid.taxonomy.is_some(), "rebuild happened before epoch 4");
        let mut b = TaxoRec::new(cfg);
        let report = b.fit_controlled(
            &d,
            &s,
            FitControl {
                resume: Some(mid),
                ..FitControl::default()
            },
        );
        assert_eq!(report.start_epoch, 4);
        assert_eq!(report.epochs_run, 2);

        // Bit-identical parameters and scores.
        let (ta, tb) = (a.tag_embeddings(), b.tag_embeddings());
        assert!(ta
            .data()
            .iter()
            .zip(tb.data())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.loss_history, b.loss_history);
        for u in [0u32, 3, 7] {
            let (sa, sb) = (a.scores_for_user(u), b.scores_for_user(u));
            assert!(sa.iter().zip(&sb).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn resume_state_validation_rejects_garbage() {
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 2;
        let states = std::cell::RefCell::new(Vec::new());
        let mut m = TaxoRec::new(cfg.clone());
        m.fit_controlled(
            &d,
            &s,
            FitControl {
                checkpoint_every: 1,
                checkpoint_sink: Some(Box::new(|st: &crate::TrainState| {
                    states.borrow_mut().push(st.clone());
                    Ok(())
                })),
                ..FitControl::default()
            },
        );
        let good = states.into_inner().remove(0);
        let mut bad = good.clone();
        bad.rng_state = [0; 4];
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.lr_scale = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.next_epoch = 99;
        assert!(bad.validate().is_err());
        assert_eq!(good.validate(), Ok(()));
    }

    #[test]
    fn failing_checkpoint_sink_does_not_stop_training() {
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 4;
        let mut m = TaxoRec::new(cfg);
        let report = m.fit_controlled(
            &d,
            &s,
            FitControl {
                checkpoint_every: 1,
                checkpoint_sink: Some(Box::new(|_: &crate::TrainState| {
                    Err("disk full".to_string())
                })),
                ..FitControl::default()
            },
        );
        assert_eq!(report.epochs_run, 4, "training ran to completion");
        assert_eq!(report.checkpoints_written, 0);
        assert_eq!(report.checkpoint_failures, 4);
        assert!(m.final_u_ir.all_finite());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (d, s) = tiny_setup();
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 3;
        let mut a = TaxoRec::new(cfg.clone());
        let mut b = TaxoRec::new(cfg);
        a.fit(&d, &s);
        b.fit(&d, &s);
        assert_eq!(a.scores_for_user(5), b.scores_for_user(5));
    }
}
