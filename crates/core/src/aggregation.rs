//! The tag-enhanced aggregation mechanism (paper §IV-D).
//!
//! * **Local aggregation** (Eqs. 9–11): an item's tag-relevant embedding is
//!   the Einstein midpoint of its tags' Klein coordinates, lifted onto the
//!   hyperboloid.
//! * **Global aggregation** (Eqs. 12–15): users and items are projected to
//!   the tangent space at the origin, propagated `L` steps across the
//!   bipartite training graph with mean aggregation and residual
//!   connections, the layer outputs summed, and the result mapped back via
//!   the exponential map.
//!
//! Both are expressed as tape ops so the gradients reach the underlying
//! parameters (including the tag embeddings `T^P`, which is how
//! recommendation feedback refines the taxonomy).

use taxorec_autodiff::{Tape, Var};

use crate::graph::GraphMatrices;

/// Local aggregation (Eqs. 9–11): Poincaré tag matrix → hyperboloid item
/// matrix (`n_items × (dim_tag + 1)`).
///
/// `einstein = false` substitutes a naive tangent-space average of the
/// item's tag embeddings — the ablation for the Einstein-midpoint design
/// choice.
pub fn local_tag_aggregation(
    tape: &mut Tape,
    t_p: Var,
    graph: &GraphMatrices,
    einstein: bool,
) -> Var {
    let _span = taxorec_telemetry::span!("train.agg.local");
    if einstein {
        let klein = tape.poincare_to_klein(t_p); // Eq. 9
        let mu = tape.einstein_midpoint(klein, &graph.item_tag); // Eq. 10
        let p = tape.klein_to_poincare(mu); // Eq. 11 (inner map)
        tape.poincare_to_lorentz(p) // Eq. 11 (p⁻¹ lift)
    } else {
        let lifted = tape.poincare_to_lorentz(t_p);
        let tangent = tape.lorentz_log_origin(lifted);
        let avg = tape.spmm_with_transpose(
            &graph.item_tag_norm,
            std::sync::Arc::new(graph.item_tag_norm.transpose()),
            tangent,
        );
        tape.lorentz_exp_origin(avg)
    }
}

/// Global aggregation (Eqs. 12–15) over the stacked user/item node set.
///
/// Input: hyperboloid user (`n_users × (d+1)`) and item (`n_items × (d+1)`)
/// matrices. Output: the propagated hyperboloid matrices, same shapes.
///
/// Following Eq. 14, the output sums the *layer outputs* `z^1..z^L`
/// (each `z^{l+1} = (I + D⁻¹A)·z^l`, Eq. 13), then applies `exp_o`
/// (Eq. 15).
pub fn global_aggregation(
    tape: &mut Tape,
    users: Var,
    items: Var,
    graph: &GraphMatrices,
    layers: usize,
) -> (Var, Var) {
    let _span = taxorec_telemetry::span!("train.agg.global");
    let zu = tape.lorentz_log_origin(users); // Eq. 12
    let zv = tape.lorentz_log_origin(items);
    let mut z = tape.concat_rows(zu, zv);
    let mut acc: Option<Var> = None;
    for _ in 0..layers.max(1) {
        z = tape.spmm_with_transpose(&graph.propagate, graph.propagate_t.clone(), z); // Eq. 13
        acc = Some(match acc {
            None => z,
            Some(a) => tape.add(a, z), // Eq. 14
        });
    }
    let summed = acc.expect("at least one layer");
    let out = tape.lorentz_exp_origin(summed); // Eq. 15
    let u_out = tape.slice_rows(out, 0, graph.n_users);
    let v_out = tape.slice_rows(out, graph.n_users, graph.n_items);
    (u_out, v_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphMatrices;
    use taxorec_autodiff::Matrix;
    use taxorec_data::{Dataset, Interaction, Split};
    use taxorec_geometry::lorentz;

    fn tiny_graph() -> GraphMatrices {
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 3,
            n_tags: 2,
            interactions: vec![
                Interaction {
                    user: 0,
                    item: 0,
                    ts: 0,
                },
                Interaction {
                    user: 1,
                    item: 1,
                    ts: 0,
                },
                Interaction {
                    user: 1,
                    item: 2,
                    ts: 1,
                },
            ],
            item_tags: vec![vec![0], vec![0, 1], vec![]],
            tag_names: vec!["a".into(), "b".into()],
            taxonomy_truth: None,
        };
        let s = Split::temporal(&d, 1.0, 0.0);
        GraphMatrices::build(&d, &s)
    }

    #[test]
    fn local_aggregation_outputs_hyperboloid_points() {
        let g = tiny_graph();
        let mut tape = Tape::new();
        let t_p = tape.leaf(Matrix::from_vec(2, 2, vec![0.3, 0.1, -0.2, 0.4]));
        for einstein in [true, false] {
            let v = local_tag_aggregation(&mut tape, t_p, &g, einstein);
            let m = tape.value(v);
            assert_eq!(m.shape(), (3, 3));
            for r in 0..3 {
                assert!(
                    lorentz::constraint_residual(m.row(r)) < 1e-7,
                    "einstein={einstein} row {r}"
                );
            }
        }
    }

    #[test]
    fn untagged_item_maps_to_origin() {
        let g = tiny_graph();
        let mut tape = Tape::new();
        let t_p = tape.leaf(Matrix::from_vec(2, 2, vec![0.3, 0.1, -0.2, 0.4]));
        let v = local_tag_aggregation(&mut tape, t_p, &g, true);
        let m = tape.value(v);
        // Item 2 has no tags: Klein midpoint 0 → hyperboloid origin.
        assert!((m.get(2, 0) - 1.0).abs() < 1e-9);
        assert!(m.get(2, 1).abs() < 1e-9);
    }

    #[test]
    fn single_tag_item_inherits_its_tag() {
        let g = tiny_graph();
        let mut tape = Tape::new();
        let t_p = tape.leaf(Matrix::from_vec(2, 2, vec![0.3, 0.1, -0.2, 0.4]));
        let v = local_tag_aggregation(&mut tape, t_p, &g, true);
        // Item 0 has exactly tag 0: its Lorentz embedding must equal the
        // direct lift of tag 0.
        let lifted = tape.poincare_to_lorentz(t_p);
        let expect = tape.value(lifted).row(0).to_vec();
        let got = tape.value(v).row(0).to_vec();
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9, "{expect:?} vs {got:?}");
        }
    }

    #[test]
    fn global_aggregation_shapes_and_manifold() {
        let g = tiny_graph();
        let mut tape = Tape::new();
        let mk = |rows: usize| {
            let mut m = Matrix::zeros(rows, 3);
            for r in 0..rows {
                let p = lorentz::from_spatial(&[0.1 * (r + 1) as f64, -0.05]);
                m.row_mut(r).copy_from_slice(&p);
            }
            m
        };
        let users = tape.leaf(mk(2));
        let items = tape.leaf(mk(3));
        let (uo, vo) = global_aggregation(&mut tape, users, items, &g, 3);
        assert_eq!(tape.value(uo).shape(), (2, 3));
        assert_eq!(tape.value(vo).shape(), (3, 3));
        for r in 0..2 {
            assert!(lorentz::constraint_residual(tape.value(uo).row(r)) < 1e-7);
        }
    }

    #[test]
    fn propagation_mixes_neighbors() {
        // A user's output must move toward its interacted item's embedding.
        let g = tiny_graph();
        let mut tape = Tape::new();
        let mut users = Matrix::zeros(2, 3);
        users
            .row_mut(0)
            .copy_from_slice(&lorentz::from_spatial(&[0.0, 0.0]));
        users
            .row_mut(1)
            .copy_from_slice(&lorentz::from_spatial(&[0.0, 0.0]));
        let mut items = Matrix::zeros(3, 3);
        items
            .row_mut(0)
            .copy_from_slice(&lorentz::from_spatial(&[1.0, 0.0]));
        items
            .row_mut(1)
            .copy_from_slice(&lorentz::from_spatial(&[-1.0, 0.0]));
        items
            .row_mut(2)
            .copy_from_slice(&lorentz::from_spatial(&[-1.0, 0.0]));
        let u = tape.leaf(users);
        let v = tape.leaf(items);
        let (uo, _) = global_aggregation(&mut tape, u, v, &g, 1);
        // User 0 interacted with item 0 (spatial +x): pulled to +x.
        assert!(tape.value(uo).get(0, 1) > 0.1);
        // User 1 interacted with items 1,2 (−x): pulled to −x.
        assert!(tape.value(uo).get(1, 1) < -0.1);
    }
}
