//! Riemannian SGD over whole parameter matrices (paper §IV-E).
//!
//! Lorentz-model parameters update via the tangent projection +
//! exponential map of Eq. 23; Poincaré-ball parameters via the conformal
//! rescaling + Möbius exponential map of Eq. 21. Per-row gradient-norm
//! clipping keeps early training stable (hinge losses on random
//! hyperbolic embeddings can produce large spikes).

use taxorec_autodiff::Matrix;
use taxorec_geometry::{lorentz, poincare, vecops};

/// Maximum Euclidean norm allowed for one row's gradient before clipping.
pub const GRAD_CLIP: f64 = 5.0;

/// Maximum per-row *step length* (`‖lr·grad_R‖`) of one Riemannian update.
/// Clipping the step rather than the raw gradient keeps large learning
/// rates stable: steps scale linearly with `lr` until the cap.
pub const STEP_CLIP: f64 = 0.25;

/// What to do with one gradient row.
enum RowGrad {
    /// Every component is exactly zero: nothing to apply.
    AllZero,
    /// At least one component is NaN/±Inf: skip (and count) the row.
    NonFinite,
    /// A finite, non-trivial gradient: apply the step.
    Active,
}

/// Classifies one gradient row in a single pass.
///
/// The non-finite case must be caught *before* any arithmetic: the old
/// `all(|x| x == 0.0)` skip let NaN rows through (`NaN != 0.0`), and
/// `vecops::clip_norm` passes a NaN norm unchanged (`NaN > max` is
/// false), so a single poisoned gradient row would silently corrupt the
/// embedding row through the manifold update.
fn classify_row(grow: &[f64]) -> RowGrad {
    let mut all_zero = true;
    for &x in grow {
        if !x.is_finite() {
            return RowGrad::NonFinite;
        }
        if x != 0.0 {
            all_zero = false;
        }
    }
    if all_zero {
        RowGrad::AllZero
    } else {
        RowGrad::Active
    }
}

/// Counts a skipped non-finite gradient row under
/// `optim.nonfinite_grad_rows`.
fn count_nonfinite_row() {
    taxorec_telemetry::counter("optim.nonfinite_grad_rows").inc(1);
}

/// Applies one RSGD step to every row of a Lorentz-model parameter matrix
/// (`n × (d+1)`, rows on the hyperboloid). The effective per-row step
/// `lr·grad` is capped at [`STEP_CLIP`]; rows with non-finite gradients
/// are skipped and counted (`optim.nonfinite_grad_rows`).
pub fn rsgd_lorentz(param: &mut Matrix, grad: &Matrix, lr: f64) {
    assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
    let mut g = vec![0.0; param.cols()];
    let mut rg = vec![0.0; param.cols()];
    let mut stepped = vec![0.0; param.cols()];
    for r in 0..param.rows() {
        let grow = grad.row(r);
        match classify_row(grow) {
            RowGrad::AllZero => continue,
            RowGrad::NonFinite => {
                count_nonfinite_row();
                continue;
            }
            RowGrad::Active => {}
        }
        for (gi, &x) in g.iter_mut().zip(grow) {
            *gi = lr * x;
        }
        vecops::clip_norm(&mut g, STEP_CLIP);
        lorentz::rsgd_step_buffered(param.row_mut(r), &g, 1.0, &mut rg, &mut stepped);
    }
}

/// Applies one RSGD step to every row of a Poincaré-ball parameter matrix
/// (`n × d`, rows strictly inside the unit ball). The effective per-row
/// step is capped at [`STEP_CLIP`]; rows with non-finite gradients are
/// skipped and counted (`optim.nonfinite_grad_rows`).
pub fn rsgd_poincare(param: &mut Matrix, grad: &Matrix, lr: f64) {
    assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
    let mut g = vec![0.0; param.cols()];
    let mut rg = vec![0.0; param.cols()];
    let mut stepped = vec![0.0; param.cols()];
    for r in 0..param.rows() {
        let grow = grad.row(r);
        match classify_row(grow) {
            RowGrad::AllZero => continue,
            RowGrad::NonFinite => {
                count_nonfinite_row();
                continue;
            }
            RowGrad::Active => {}
        }
        for (gi, &x) in g.iter_mut().zip(grow) {
            *gi = lr * x;
        }
        vecops::clip_norm(&mut g, STEP_CLIP);
        poincare::rsgd_step_buffered(param.row_mut(r), &g, 1.0, &mut rg, &mut stepped);
    }
}

/// Clips every hyperboloid row to geodesic distance ≤ `radius` from the
/// origin (log-map, rescale, exp-map). A bounded embedding region keeps
/// squared-distance margins meaningful — the hyperbolic analogue of CML's
/// unit-ball constraint.
pub fn clip_lorentz_radius(param: &mut Matrix, radius: f64) {
    let d = param.cols() - 1;
    let mut tangent = vec![0.0; d];
    for r in 0..param.rows() {
        let row = param.row_mut(r);
        let dist = taxorec_geometry::arcosh(row[0]);
        if dist > radius {
            lorentz::log_map_origin(row, &mut tangent);
            let scale = radius / dist;
            for t in tangent.iter_mut() {
                *t *= scale;
            }
            lorentz::exp_map_origin(&tangent, row);
        }
    }
}

/// Plain Euclidean SGD with row clipping — used by the Euclidean baselines
/// sharing this optimizer module.
pub fn sgd(param: &mut Matrix, grad: &Matrix, lr: f64) {
    assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
    let mut g = vec![0.0; param.cols()];
    for r in 0..param.rows() {
        let grow = grad.row(r);
        match classify_row(grow) {
            RowGrad::AllZero => continue,
            RowGrad::NonFinite => {
                count_nonfinite_row();
                continue;
            }
            RowGrad::Active => {}
        }
        g.copy_from_slice(grow);
        vecops::clip_norm(&mut g, GRAD_CLIP);
        let prow = param.row_mut(r);
        for (p, gi) in prow.iter_mut().zip(&g) {
            *p -= lr * gi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorentz_rows_stay_on_hyperboloid() {
        let mut p = Matrix::zeros(3, 4);
        for r in 0..3 {
            let x = lorentz::from_spatial(&[0.1 * r as f64, -0.2, 0.3]);
            p.row_mut(r).copy_from_slice(&x);
        }
        let g = Matrix::full(3, 4, 0.7);
        rsgd_lorentz(&mut p, &g, 0.1);
        for r in 0..3 {
            assert!(lorentz::constraint_residual(p.row(r)) < 1e-9);
        }
    }

    #[test]
    fn poincare_rows_stay_in_ball() {
        let mut p = Matrix::from_vec(2, 2, vec![0.9, 0.0, -0.5, 0.5]);
        let g = Matrix::full(2, 2, -3.0);
        for _ in 0..20 {
            rsgd_poincare(&mut p, &g, 0.5);
        }
        for r in 0..2 {
            assert!(vecops::norm(p.row(r)) < 1.0);
        }
    }

    #[test]
    fn zero_gradient_rows_are_untouched() {
        let orig = lorentz::from_spatial(&[0.3, 0.4]);
        let mut p = Matrix::from_vec(1, 3, orig.clone());
        let g = Matrix::zeros(1, 3);
        rsgd_lorentz(&mut p, &g, 1.0);
        assert_eq!(p.row(0), &orig[..]);
    }

    #[test]
    fn huge_gradients_are_clipped() {
        let mut p = Matrix::from_vec(1, 3, lorentz::from_spatial(&[0.0, 0.0]));
        let g = Matrix::from_vec(1, 3, vec![0.0, 1e9, 0.0]);
        rsgd_lorentz(&mut p, &g, 100.0);
        // Step length bounded by STEP_CLIP regardless of lr.
        let o = lorentz::origin(3);
        assert!(lorentz::distance(&o, p.row(0)) <= STEP_CLIP + 1e-9);
    }

    #[test]
    fn small_steps_scale_linearly_with_lr() {
        let g = Matrix::from_vec(1, 3, vec![0.0, 0.01, 0.0]);
        let mut p1 = Matrix::from_vec(1, 3, lorentz::from_spatial(&[0.0, 0.0]));
        rsgd_lorentz(&mut p1, &g, 1.0);
        let mut p2 = Matrix::from_vec(1, 3, lorentz::from_spatial(&[0.0, 0.0]));
        rsgd_lorentz(&mut p2, &g, 2.0);
        let o = lorentz::origin(3);
        let d1 = lorentz::distance(&o, p1.row(0));
        let d2 = lorentz::distance(&o, p2.row(0));
        assert!((d2 / d1 - 2.0).abs() < 1e-3, "d1={d1} d2={d2}");
    }

    #[test]
    fn nonfinite_gradient_rows_are_skipped_and_counted() {
        let counter = taxorec_telemetry::counter("optim.nonfinite_grad_rows");
        let before = counter.get();
        let orig_a = lorentz::from_spatial(&[0.3, 0.4]);
        let orig_b = lorentz::from_spatial(&[-0.1, 0.2]);
        let mut p = Matrix::zeros(2, 3);
        p.row_mut(0).copy_from_slice(&orig_a);
        p.row_mut(1).copy_from_slice(&orig_b);
        // Row 0 poisoned with NaN, row 1 with +Inf. The old zero-row skip
        // let both through (`NaN != 0.0`), and clip_norm passes a NaN norm
        // unchanged, so the rows came back poisoned.
        let g = Matrix::from_vec(2, 3, vec![f64::NAN, 1.0, 0.5, 0.0, f64::INFINITY, 0.0]);
        rsgd_lorentz(&mut p, &g, 0.5);
        assert_eq!(p.row(0), &orig_a[..], "NaN row must be left untouched");
        assert_eq!(p.row(1), &orig_b[..], "Inf row must be left untouched");
        assert!(p.data().iter().all(|x| x.is_finite()));
        assert_eq!(counter.get() - before, 2);

        // Poincaré and plain SGD share the same guard.
        let mut q = Matrix::from_vec(1, 2, vec![0.1, -0.2]);
        let gq = Matrix::from_vec(1, 2, vec![f64::NEG_INFINITY, 0.0]);
        rsgd_poincare(&mut q, &gq, 1.0);
        assert_eq!(q.data(), &[0.1, -0.2]);
        let mut e = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        sgd(
            &mut e,
            &Matrix::from_vec(1, 2, vec![f64::NAN, f64::NAN]),
            0.1,
        );
        assert_eq!(e.data(), &[1.0, 2.0]);
        assert_eq!(counter.get() - before, 4);
    }

    #[test]
    fn healthy_rows_still_step_next_to_poisoned_ones() {
        let start = lorentz::from_spatial(&[0.3, 0.4]);
        let mut p = Matrix::zeros(2, 3);
        p.row_mut(0).copy_from_slice(&start);
        p.row_mut(1).copy_from_slice(&start);
        let g = Matrix::from_vec(2, 3, vec![f64::NAN, 0.0, 0.0, 0.0, 0.5, 0.0]);
        rsgd_lorentz(&mut p, &g, 0.5);
        assert_eq!(p.row(0), &start[..], "poisoned row skipped");
        assert!(p.row(1) != &start[..], "healthy row received its update");
        assert!(lorentz::constraint_residual(p.row(1)) < 1e-9);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let g = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        sgd(&mut p, &g, 0.5);
        assert_eq!(p.data(), &[0.5, 2.5]);
    }
}
