//! Riemannian SGD over whole parameter matrices (paper §IV-E).
//!
//! Lorentz-model parameters update via the tangent projection +
//! exponential map of Eq. 23; Poincaré-ball parameters via the conformal
//! rescaling + Möbius exponential map of Eq. 21. Per-row gradient-norm
//! clipping keeps early training stable (hinge losses on random
//! hyperbolic embeddings can produce large spikes).

use taxorec_autodiff::Matrix;
use taxorec_geometry::{lorentz, poincare, vecops};

/// Maximum Euclidean norm allowed for one row's gradient before clipping.
pub const GRAD_CLIP: f64 = 5.0;

/// Maximum per-row *step length* (`‖lr·grad_R‖`) of one Riemannian update.
/// Clipping the step rather than the raw gradient keeps large learning
/// rates stable: steps scale linearly with `lr` until the cap.
pub const STEP_CLIP: f64 = 0.25;

/// Applies one RSGD step to every row of a Lorentz-model parameter matrix
/// (`n × (d+1)`, rows on the hyperboloid). The effective per-row step
/// `lr·grad` is capped at [`STEP_CLIP`].
pub fn rsgd_lorentz(param: &mut Matrix, grad: &Matrix, lr: f64) {
    assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
    let mut g = vec![0.0; param.cols()];
    for r in 0..param.rows() {
        let grow = grad.row(r);
        if grow.iter().all(|&x| x == 0.0) {
            continue;
        }
        for (gi, &x) in g.iter_mut().zip(grow) {
            *gi = lr * x;
        }
        vecops::clip_norm(&mut g, STEP_CLIP);
        lorentz::rsgd_step(param.row_mut(r), &g, 1.0);
    }
}

/// Applies one RSGD step to every row of a Poincaré-ball parameter matrix
/// (`n × d`, rows strictly inside the unit ball). The effective per-row
/// step is capped at [`STEP_CLIP`].
pub fn rsgd_poincare(param: &mut Matrix, grad: &Matrix, lr: f64) {
    assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
    let mut g = vec![0.0; param.cols()];
    for r in 0..param.rows() {
        let grow = grad.row(r);
        if grow.iter().all(|&x| x == 0.0) {
            continue;
        }
        for (gi, &x) in g.iter_mut().zip(grow) {
            *gi = lr * x;
        }
        vecops::clip_norm(&mut g, STEP_CLIP);
        poincare::rsgd_step(param.row_mut(r), &g, 1.0);
    }
}

/// Clips every hyperboloid row to geodesic distance ≤ `radius` from the
/// origin (log-map, rescale, exp-map). A bounded embedding region keeps
/// squared-distance margins meaningful — the hyperbolic analogue of CML's
/// unit-ball constraint.
pub fn clip_lorentz_radius(param: &mut Matrix, radius: f64) {
    let d = param.cols() - 1;
    let mut tangent = vec![0.0; d];
    for r in 0..param.rows() {
        let row = param.row_mut(r);
        let dist = taxorec_geometry::arcosh(row[0]);
        if dist > radius {
            lorentz::log_map_origin(row, &mut tangent);
            let scale = radius / dist;
            for t in tangent.iter_mut() {
                *t *= scale;
            }
            lorentz::exp_map_origin(&tangent, row);
        }
    }
}

/// Plain Euclidean SGD with row clipping — used by the Euclidean baselines
/// sharing this optimizer module.
pub fn sgd(param: &mut Matrix, grad: &Matrix, lr: f64) {
    assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
    let mut g = vec![0.0; param.cols()];
    for r in 0..param.rows() {
        let grow = grad.row(r);
        if grow.iter().all(|&x| x == 0.0) {
            continue;
        }
        g.copy_from_slice(grow);
        vecops::clip_norm(&mut g, GRAD_CLIP);
        let prow = param.row_mut(r);
        for (p, gi) in prow.iter_mut().zip(&g) {
            *p -= lr * gi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorentz_rows_stay_on_hyperboloid() {
        let mut p = Matrix::zeros(3, 4);
        for r in 0..3 {
            let x = lorentz::from_spatial(&[0.1 * r as f64, -0.2, 0.3]);
            p.row_mut(r).copy_from_slice(&x);
        }
        let g = Matrix::full(3, 4, 0.7);
        rsgd_lorentz(&mut p, &g, 0.1);
        for r in 0..3 {
            assert!(lorentz::constraint_residual(p.row(r)) < 1e-9);
        }
    }

    #[test]
    fn poincare_rows_stay_in_ball() {
        let mut p = Matrix::from_vec(2, 2, vec![0.9, 0.0, -0.5, 0.5]);
        let g = Matrix::full(2, 2, -3.0);
        for _ in 0..20 {
            rsgd_poincare(&mut p, &g, 0.5);
        }
        for r in 0..2 {
            assert!(vecops::norm(p.row(r)) < 1.0);
        }
    }

    #[test]
    fn zero_gradient_rows_are_untouched() {
        let orig = lorentz::from_spatial(&[0.3, 0.4]);
        let mut p = Matrix::from_vec(1, 3, orig.clone());
        let g = Matrix::zeros(1, 3);
        rsgd_lorentz(&mut p, &g, 1.0);
        assert_eq!(p.row(0), &orig[..]);
    }

    #[test]
    fn huge_gradients_are_clipped() {
        let mut p = Matrix::from_vec(1, 3, lorentz::from_spatial(&[0.0, 0.0]));
        let g = Matrix::from_vec(1, 3, vec![0.0, 1e9, 0.0]);
        rsgd_lorentz(&mut p, &g, 100.0);
        // Step length bounded by STEP_CLIP regardless of lr.
        let o = lorentz::origin(3);
        assert!(lorentz::distance(&o, p.row(0)) <= STEP_CLIP + 1e-9);
    }

    #[test]
    fn small_steps_scale_linearly_with_lr() {
        let g = Matrix::from_vec(1, 3, vec![0.0, 0.01, 0.0]);
        let mut p1 = Matrix::from_vec(1, 3, lorentz::from_spatial(&[0.0, 0.0]));
        rsgd_lorentz(&mut p1, &g, 1.0);
        let mut p2 = Matrix::from_vec(1, 3, lorentz::from_spatial(&[0.0, 0.0]));
        rsgd_lorentz(&mut p2, &g, 2.0);
        let o = lorentz::origin(3);
        let d1 = lorentz::distance(&o, p1.row(0));
        let d2 = lorentz::distance(&o, p2.row(0));
        assert!((d2 / d1 - 2.0).abs() < 1e-3, "d1={d1} d2={d2}");
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let g = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        sgd(&mut p, &g, 0.5);
        assert_eq!(p.data(), &[0.5, 2.5]);
    }
}
