//! Graph constants of the computation: the normalized bipartite
//! propagation matrix of the global aggregation (paper Eq. 13) and the
//! item–tag matrix `Ψ` of the local aggregation (Eq. 10).

use std::sync::Arc;

use taxorec_autodiff::Csr;
use taxorec_data::{Dataset, Split};

/// Propagation and weighting matrices shared by every forward pass.
pub struct GraphMatrices {
    /// `(n_users + n_items)²` one-step propagation matrix
    /// `M = I + D⁻¹·A` over the stacked user/item node set, where `A` is
    /// the (symmetric) bipartite training adjacency — one application
    /// computes paper Eq. 13 for both sides at once.
    pub propagate: Arc<Csr>,
    /// Cached transpose of [`GraphMatrices::propagate`] for backward.
    pub propagate_t: Arc<Csr>,
    /// Item–tag weights `Ψ` (`n_items × n_tags`, binary).
    pub item_tag: Arc<Csr>,
    /// Row-normalized `Ψ` (rows sum to 1) — used by the naive
    /// tangent-average ablation of the local aggregation.
    pub item_tag_norm: Arc<Csr>,
    /// Number of users (rows `0..n_users` of the stacked node set).
    pub n_users: usize,
    /// Number of items (rows `n_users..n_users+n_items`).
    pub n_items: usize,
}

impl GraphMatrices {
    /// Builds the matrices from the training split of a dataset.
    pub fn build(dataset: &Dataset, split: &Split) -> Self {
        let n_users = dataset.n_users;
        let n_items = dataset.n_items;
        let n = n_users + n_items;
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        // Mean aggregation: each edge (u,v) contributes 1/|N_u| to row u
        // and 1/|N_v| to row v+n_users.
        let mut item_degree = vec![0usize; n_items];
        for items in &split.train {
            for &v in items {
                item_degree[v as usize] += 1;
            }
        }
        for (u, items) in split.train.iter().enumerate() {
            let du = items.len();
            for &v in items {
                triplets.push((u, n_users + v as usize, 1.0 / du as f64));
                triplets.push((
                    n_users + v as usize,
                    u,
                    1.0 / item_degree[v as usize] as f64,
                ));
            }
        }
        // Self-loops: Eq. 13's `z^{l+1} = z^l + mean(neighbors)`.
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        let propagate = Arc::new(Csr::from_triplets(n, n, &triplets));
        let propagate_t = Arc::new(propagate.transpose());

        let mut tag_triplets = Vec::new();
        for (v, tags) in dataset.item_tags.iter().enumerate() {
            for &t in tags {
                tag_triplets.push((v, t as usize, 1.0));
            }
        }
        let item_tag = Arc::new(Csr::from_triplets(
            n_items,
            dataset.n_tags.max(1),
            &tag_triplets,
        ));
        let mut norm = (*item_tag).clone();
        norm.normalize_rows();
        let item_tag_norm = Arc::new(norm);
        Self {
            propagate,
            propagate_t,
            item_tag,
            item_tag_norm,
            n_users,
            n_items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{Dataset, Interaction};

    fn tiny() -> (Dataset, Split) {
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 2,
            n_tags: 2,
            interactions: vec![
                Interaction {
                    user: 0,
                    item: 0,
                    ts: 0,
                },
                Interaction {
                    user: 0,
                    item: 1,
                    ts: 1,
                },
                Interaction {
                    user: 1,
                    item: 1,
                    ts: 0,
                },
            ],
            item_tags: vec![vec![0], vec![0, 1]],
            tag_names: vec!["a".into(), "b".into()],
            taxonomy_truth: None,
        };
        let s = Split::temporal(&d, 1.0, 0.0);
        (d, s)
    }

    #[test]
    fn propagation_rows_mean_plus_self() {
        let (d, s) = tiny();
        let g = GraphMatrices::build(&d, &s);
        let m = g.propagate.to_dense();
        // User 0 row: self (1.0) + 1/2 each to items 0 and 1 (cols 2,3).
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 0.5);
        assert_eq!(m.get(0, 3), 0.5);
        // Item 1 (row 3): self + 1/2 to users 0 and 1.
        assert_eq!(m.get(3, 3), 1.0);
        assert_eq!(m.get(3, 0), 0.5);
        assert_eq!(m.get(3, 1), 0.5);
        // Item 0 (row 2): only user 0 interacted ⇒ weight 1.
        assert_eq!(m.get(2, 0), 1.0);
    }

    #[test]
    fn item_tag_matrix_matches_lists() {
        let (d, s) = tiny();
        let g = GraphMatrices::build(&d, &s);
        let psi = g.item_tag.to_dense();
        assert_eq!(psi.get(0, 0), 1.0);
        assert_eq!(psi.get(0, 1), 0.0);
        assert_eq!(psi.get(1, 1), 1.0);
    }

    #[test]
    fn transpose_is_consistent() {
        let (d, s) = tiny();
        let g = GraphMatrices::build(&d, &s);
        assert_eq!(
            g.propagate_t.to_dense().data(),
            g.propagate.to_dense().transpose().data()
        );
    }

    #[test]
    fn empty_training_user_keeps_self_loop_only() {
        let (d, mut s) = tiny();
        s.train[1].clear();
        let g = GraphMatrices::build(&d, &s);
        let m = g.propagate.to_dense();
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.get(1, 3), 0.0);
    }
}
