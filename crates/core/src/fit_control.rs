//! Fault-tolerant training control: resumable state, checkpoint cadence,
//! and divergence-recovery policy for [`crate::TaxoRec::fit_controlled`].
//!
//! ## Crash-resume contract
//!
//! A [`TrainState`] captured after epoch `k` contains everything the
//! training loop cannot recompute deterministically from `(dataset,
//! split, config)`:
//!
//! * the **raw** (pre-aggregation) parameters `u^ir`, `v^ir`, `u^tg`,
//!   `T^P` — the post-aggregation embeddings are derived;
//! * the RNG state (xoshiro256++ words) *after* epoch `k` finished, so
//!   the resumed shuffle/negative-sampling stream continues exactly;
//! * the **taxonomy** as of its last rebuild — the Eq. 8 regularization
//!   plan derives from `T^P` at the *rebuild* epoch, not the current one,
//!   so it cannot be reconstructed from the checkpointed `T^P`;
//! * the divergence-recovery knobs (`lr_scale`, rollback count) and the
//!   loss history.
//!
//! Everything else (interaction graph, `α_u` weights, the base training
//! pair list) is rebuilt from the dataset, which makes the state small
//! and the resume **bit-identical**: training to epoch `n`, or training
//! to epoch `k < n`, reloading, and continuing to `n`, produce the same
//! parameters bit for bit.
//!
//! ## Divergence recovery
//!
//! At the end of every epoch the loop checks for divergence (non-finite
//! epoch mean, or a majority of batches skipped as non-finite). A
//! diverged epoch is **rolled back**: parameters, RNG, and loss history
//! are restored to the start-of-epoch snapshot, the effective learning
//! rate is multiplied by [`FitControl::lr_backoff`], and the epoch is
//! re-run. After [`FitControl::max_rollbacks`] rollbacks the loop gives
//! up, restores the last good snapshot, and returns with
//! [`FitReport::gave_up`] set — the model stays usable at its last
//! healthy parameters instead of poisoning downstream consumers.

use std::time::Duration;

use taxorec_autodiff::Matrix;
use taxorec_taxonomy::Taxonomy;

use crate::config::TaxoRecConfig;

/// A resumable snapshot of mid-training state. Produced by the
/// checkpoint sink of [`crate::TaxoRec::fit_controlled`]; feed it back
/// through [`FitControl::resume`] to continue bit-identically.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// Configuration of the run that produced this state. A resume must
    /// use the same configuration (enforced by `fit_controlled`).
    pub config: TaxoRecConfig,
    /// First epoch the resumed loop should run (epochs `0..next_epoch`
    /// are already reflected in the parameters).
    pub next_epoch: usize,
    /// xoshiro256++ state after the last completed epoch.
    pub rng_state: [u64; 4],
    /// Current divergence-recovery learning-rate multiplier (1.0 unless
    /// rollbacks happened).
    pub lr_scale: f64,
    /// Rollbacks consumed so far (counts against
    /// [`FitControl::max_rollbacks`]).
    pub rollbacks: usize,
    /// Raw user embeddings on the hyperboloid (`n_users × (dim_ir+1)`).
    pub u_ir: Matrix,
    /// Raw item embeddings on the hyperboloid.
    pub v_ir: Matrix,
    /// Raw user tag-channel embeddings.
    pub u_tg: Matrix,
    /// Poincaré tag embeddings.
    pub t_p: Matrix,
    /// Mean loss of each completed epoch.
    pub loss_history: Vec<f64>,
    /// The taxonomy as of its most recent rebuild (None before the first
    /// rebuild or when the tag channel is off).
    pub taxonomy: Option<Taxonomy>,
}

impl TrainState {
    /// Structural sanity checks (not dataset-shape checks — those happen
    /// in `fit_controlled` where the dataset is in scope).
    pub fn validate(&self) -> Result<(), String> {
        self.config.validate()?;
        if self.next_epoch > self.config.epochs {
            return Err(format!(
                "next_epoch {} exceeds configured epochs {}",
                self.next_epoch, self.config.epochs
            ));
        }
        if self.rng_state.iter().all(|&w| w == 0) {
            return Err("all-zero RNG state".to_string());
        }
        if !self.lr_scale.is_finite() || self.lr_scale <= 0.0 {
            return Err(format!("invalid lr_scale {}", self.lr_scale));
        }
        if self.loss_history.len() > self.next_epoch {
            return Err(format!(
                "loss history has {} entries but only {} epochs completed",
                self.loss_history.len(),
                self.next_epoch
            ));
        }
        Ok(())
    }
}

/// Knobs for [`crate::TaxoRec::fit_controlled`]. [`Default`] reproduces
/// plain `fit`: no resume, no checkpoints, up to 3 divergence rollbacks
/// with learning-rate halving.
pub struct FitControl<'a> {
    /// Continue from a previous [`TrainState`] instead of initializing.
    pub resume: Option<TrainState>,
    /// Emit a checkpoint every this many completed epochs (0 = never).
    pub checkpoint_every: usize,
    /// Receives each checkpoint. A failing sink is warned and counted
    /// (`resilience.checkpoint.failed`) but never stops training.
    #[allow(clippy::type_complexity)]
    pub checkpoint_sink: Option<Box<dyn FnMut(&TrainState) -> Result<(), String> + 'a>>,
    /// Divergence rollbacks allowed before giving up.
    pub max_rollbacks: usize,
    /// Learning-rate multiplier applied on each rollback.
    pub lr_backoff: f64,
    /// Sleep inserted after every epoch (testing hook: makes mid-run
    /// kills land deterministically between epochs).
    pub epoch_throttle: Duration,
    /// Called after every successfully completed epoch with its record
    /// (loss, grad norm, stage breakdown). Drives progress tails like
    /// `train-demo --follow`; rolled-back epochs are not reported.
    #[allow(clippy::type_complexity)]
    pub on_epoch: Option<Box<dyn FnMut(&taxorec_telemetry::EpochRecord) + 'a>>,
}

impl Default for FitControl<'_> {
    fn default() -> Self {
        Self {
            resume: None,
            checkpoint_every: 0,
            checkpoint_sink: None,
            max_rollbacks: 3,
            lr_backoff: 0.5,
            epoch_throttle: Duration::ZERO,
            on_epoch: None,
        }
    }
}

/// What [`crate::TaxoRec::fit_controlled`] did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FitReport {
    /// Epoch the loop started at (> 0 when resumed).
    pub start_epoch: usize,
    /// Epochs completed successfully during this call (rolled-back
    /// attempts excluded).
    pub epochs_run: usize,
    /// Divergence rollbacks performed during this call.
    pub rollbacks: usize,
    /// Checkpoints handed to the sink that reported success.
    pub checkpoints_written: usize,
    /// Checkpoints the sink rejected (training continued regardless).
    pub checkpoint_failures: usize,
    /// Final learning-rate multiplier (< 1.0 after rollbacks).
    pub final_lr_scale: f64,
    /// True when the rollback budget was exhausted and training stopped
    /// early at the last healthy snapshot.
    pub gave_up: bool,
}
