//! Incremental (online) model updates: folding a journal of live
//! interactions into an exported [`ModelState`] between serving ticks.
//!
//! The offline trainer owns tapes, graph matrices, and regularizer
//! plans; none of that exists once a model is frozen into a `.taxo`
//! artifact. This module therefore updates the *final post-aggregation*
//! embeddings directly with the same Riemannian machinery the trainer
//! uses — margin triplet steps on the Lorentz channels (HyperML-style)
//! and Poincaré pulls on the tag embeddings — which keeps an online
//! model scoreable through the identical Eq. 16/17 path at every point.
//!
//! ## Determinism contract
//!
//! The fold is a **pure function of (state, journal cursor, journal
//! contents, config)**:
//!
//! * interactions apply strictly sequentially, in journal order;
//! * negative samples derive from the journal cursor via SplitMix64;
//! * never-seen users/items/tags are grown with rows seeded by their
//!   absolute row index (not by batch composition), so folding one
//!   batch of N or N batches of one produces bit-identical matrices;
//! * nothing here touches the thread pool, so `TAXOREC_THREADS` cannot
//!   change a single bit of the result.
//!
//! Replaying the same journal from the same base checkpoint therefore
//! reproduces the same artifact byte-for-byte — the property the
//! serving tier's replay/failover guarantees are built on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_autodiff::Matrix;
use taxorec_geometry::{arcosh, arcosh_grad, convert, lorentz, poincare, vecops};

use crate::export::ModelState;
use crate::init;
use crate::optim::GRAD_CLIP;

/// One journaled interaction: user `user` interacted with item `item`,
/// annotated with (already id-resolved) tags. Ids may exceed the
/// model's current row counts — the fold grows the matrices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// User id (row in `u_ir`/`u_tg`; may be never-seen).
    pub user: u32,
    /// Item id (row in `v_ir`/`v_tg`; may be never-seen).
    pub item: u32,
    /// Tag ids annotating this interaction (rows in `t_p`; may be
    /// never-seen — the caller allocates ids for new tag names).
    pub tags: Vec<u32>,
}

/// Tuning of the incremental fold. [`Default`] matches the serving
/// tier's `TAXOREC_INGEST_*` defaults.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// Riemannian step size for the Lorentz interaction channels.
    pub lr: f64,
    /// Hinge margin of the triplet objective (HyperML Eq. 4 shape).
    pub margin: f64,
    /// Base seed for negative sampling and new-row initialization.
    /// Use the trained model's `config.seed` so a replayed journal
    /// reproduces the artifact bit-for-bit.
    pub seed: u64,
    /// Hard cap on rows grown in one call — a typo'd id must fail the
    /// batch, not allocate a four-billion-row matrix.
    pub max_growth: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            margin: 1.0,
            seed: 0,
            max_growth: 100_000,
        }
    }
}

/// What one [`apply_interactions`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Interactions folded in.
    pub applied: usize,
    /// User rows grown (including gap rows below the highest new id).
    pub new_users: usize,
    /// Item rows grown.
    pub new_items: usize,
    /// Tag rows grown.
    pub new_tags: usize,
    /// Journal cursor after the fold (`base_cursor + applied`).
    pub cursor: u64,
}

/// Spatial std-dev for freshly grown Lorentz rows (near-origin, as in
/// training initialization).
const GROW_LORENTZ_STD: f64 = 0.1;
/// Half-range for freshly grown Poincaré tag rows.
const GROW_POINCARE_RANGE: f64 = 0.01;

/// Domain-separation constants for per-row growth seeds.
const KIND_USER_IR: u64 = 0x75697200;
const KIND_USER_TG: u64 = 0x75746700;
const KIND_ITEM_IR: u64 = 0x76697200;
const KIND_ITEM_TG: u64 = 0x76746700;
const KIND_TAG: u64 = 0x74616700;
const KIND_NEGATIVE: u64 = 0x6e656700;

/// SplitMix64 — the standard 64-bit mixer; enough to decorrelate the
/// derived seeds below.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic per-row seed: a function of (base seed, matrix kind,
/// absolute row index) only.
fn row_seed(seed: u64, kind: u64, row: usize) -> u64 {
    splitmix64(seed ^ splitmix64(kind) ^ splitmix64(row as u64))
}

/// Grows `m` to `rows` rows, each new row produced by `make_row(r)`.
fn grow_matrix(m: &mut Matrix, rows: usize, make_row: impl Fn(usize) -> Vec<f64>) {
    if m.rows() >= rows {
        return;
    }
    let cols = m.cols();
    let mut data = Vec::with_capacity(rows * cols);
    data.extend_from_slice(m.data());
    for r in m.rows()..rows {
        let row = make_row(r);
        debug_assert_eq!(row.len(), cols);
        data.extend_from_slice(&row);
    }
    *m = Matrix::from_vec(rows, cols, data);
}

fn lorentz_row(seed: u64, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spatial: Vec<f64> = (0..dim)
        .map(|_| init::normal(&mut rng) * GROW_LORENTZ_STD)
        .collect();
    lorentz::from_spatial(&spatial)
}

fn poincare_row(seed: u64, dim: usize) -> Vec<f64> {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..dim)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * GROW_POINCARE_RANGE)
        .collect()
}

/// Accumulates the Euclidean ambient gradient of `w · d_H(x, y)²` with
/// respect to `x` into `gx` (`s = −⟨x,y⟩_L`, `∂s/∂x = (y₀, −y₁, …)`).
fn lorentz_sqdist_grad(x: &[f64], y: &[f64], w: f64, gx: &mut [f64]) {
    let s = -lorentz::inner(x, y);
    let c = 2.0 * arcosh(s) * arcosh_grad(s) * w;
    gx[0] += c * y[0];
    for i in 1..x.len() {
        gx[i] -= c * y[i];
    }
}

/// Clips `g` to [`GRAD_CLIP`] and applies one buffered Lorentz RSGD
/// step to `row`, skipping non-finite gradients (mirrors `optim`'s
/// whole-matrix hygiene).
fn lorentz_step(row: &mut [f64], g: &mut [f64], lr: f64, rg: &mut [f64], out: &mut [f64]) {
    if g.iter().any(|v| !v.is_finite()) {
        taxorec_telemetry::counter("optim.nonfinite_grad_rows").inc(1);
        return;
    }
    vecops::clip_norm(g, GRAD_CLIP);
    lorentz::rsgd_step_buffered(row, g, lr, rg, out);
}

/// Pure pre-flight check: would the whole batch grow the model past
/// the cap? Runs before any mutation so a rejected batch leaves the
/// state untouched.
fn check_growth_cap(
    state: &ModelState,
    batch: &[Interaction],
    cfg: &IncrementalConfig,
) -> Result<(), String> {
    let mut n_users = state.n_users();
    let mut n_items = state.n_items();
    let mut n_tags = state.n_tags();
    for it in batch {
        n_users = n_users.max(it.user as usize + 1);
        n_items = n_items.max(it.item as usize + 1);
        for &t in &it.tags {
            n_tags = n_tags.max(t as usize + 1);
        }
    }
    let growth =
        (n_users - state.n_users()) + (n_items - state.n_items()) + (n_tags - state.n_tags());
    if growth > cfg.max_growth {
        return Err(format!(
            "batch would grow {growth} rows, over the cap of {} — \
             rejecting (likely a corrupt or hostile id)",
            cfg.max_growth
        ));
    }
    Ok(())
}

/// Grows the state to cover one interaction's ids. Growth happens
/// per-interaction — not per-batch — so the catalogue size seen by
/// negative sampling at journal position `c` is a function of the
/// journal prefix alone, never of how the caller chunked it. Returns
/// `(new_users, new_items, new_tags)`.
fn grow_for_interaction(
    state: &mut ModelState,
    it: &Interaction,
    cfg: &IncrementalConfig,
) -> (usize, usize, usize) {
    let n_users = state.n_users().max(it.user as usize + 1);
    let n_items = state.n_items().max(it.item as usize + 1);
    let n_tags = state
        .n_tags()
        .max(it.tags.iter().map(|&t| t as usize + 1).max().unwrap_or(0));
    let new_users = n_users - state.n_users();
    let new_items = n_items - state.n_items();
    let new_tags = n_tags - state.n_tags();
    if new_users + new_items + new_tags == 0 {
        return (0, 0, 0);
    }
    let seed = cfg.seed;
    let dim_ir = state.config.dim_ir;
    let dim_tag = state.config.dim_tag;
    grow_matrix(&mut state.u_ir, n_users, |r| {
        lorentz_row(row_seed(seed, KIND_USER_IR, r), dim_ir)
    });
    grow_matrix(&mut state.v_ir, n_items, |r| {
        lorentz_row(row_seed(seed, KIND_ITEM_IR, r), dim_ir)
    });
    if state.tags_active {
        grow_matrix(&mut state.u_tg, n_users, |r| {
            lorentz_row(row_seed(seed, KIND_USER_TG, r), dim_tag)
        });
        grow_matrix(&mut state.v_tg, n_items, |r| {
            lorentz_row(row_seed(seed, KIND_ITEM_TG, r), dim_tag)
        });
        grow_matrix(&mut state.t_p, n_tags, |r| {
            poincare_row(row_seed(seed, KIND_TAG, r), dim_tag)
        });
    }
    // New users start at the mean personalization weight — the least
    // surprising prior, and deterministic.
    if state.alphas.len() < n_users {
        let mean = if state.alphas.is_empty() {
            0.5
        } else {
            state.alphas.iter().sum::<f64>() / state.alphas.len() as f64
        };
        state.alphas.resize(n_users, mean);
    }
    (new_users, new_items, new_tags)
}

/// Folds `batch` into `state`, strictly in order, with the journal
/// cursor of the first entry at `base_cursor`.
///
/// Per interaction: one margin-triplet RSGD step on the interaction
/// channel (`u_ir`/`v_ir`), one on the tag channel (`u_tg`/`v_tg`)
/// when active, and a Poincaré pull of each annotating tag embedding
/// toward the item's tag-channel position. Negatives are sampled
/// deterministically from the cursor. See the module docs for the
/// determinism contract.
///
/// # Errors
/// Rejects batches whose ids would grow the model past
/// [`IncrementalConfig::max_growth`]; the state is unchanged on error.
pub fn apply_interactions(
    state: &mut ModelState,
    base_cursor: u64,
    batch: &[Interaction],
    cfg: &IncrementalConfig,
) -> Result<IncrementalReport, String> {
    if batch.is_empty() {
        return Ok(IncrementalReport {
            cursor: base_cursor,
            ..IncrementalReport::default()
        });
    }
    check_growth_cap(state, batch, cfg)?;
    let tags_on = state.tags_active;
    let amb_ir = state.u_ir.cols();
    let amb_tg = if tags_on { state.u_tg.cols() } else { 0 };
    let dim_tag = state.config.dim_tag;
    let lr_tag = cfg.lr * state.config.lr_tag_mult;
    // Reusable step buffers, sized for the widest ambient dimension.
    let width = amb_ir.max(amb_tg).max(dim_tag);
    let mut rg = vec![0.0; width];
    let mut out = vec![0.0; width];
    let (mut new_users, mut new_items, mut new_tags) = (0, 0, 0);

    for (offset, it) in batch.iter().enumerate() {
        let cursor = base_cursor + offset as u64;
        let (gu, gi, gt) = grow_for_interaction(state, it, cfg);
        new_users += gu;
        new_items += gi;
        new_tags += gt;
        let n_items = state.n_items();
        let u = it.user as usize;
        let pos = it.item as usize;
        // Cursor-derived negative, nudged off the positive. With a
        // one-item catalogue there is no distinct negative; the hinge
        // then compares the positive against itself and stays silent.
        let draw = splitmix64(cfg.seed ^ splitmix64(KIND_NEGATIVE) ^ splitmix64(cursor));
        let mut neg = (draw % n_items as u64) as usize;
        if neg == pos {
            neg = (neg + 1) % n_items;
        }

        triplet_step(
            &mut state.u_ir,
            &mut state.v_ir,
            u,
            pos,
            neg,
            cfg.margin,
            cfg.lr,
            &mut rg[..amb_ir],
            &mut out[..amb_ir],
        );
        if tags_on {
            triplet_step(
                &mut state.u_tg,
                &mut state.v_tg,
                u,
                pos,
                neg,
                cfg.margin,
                cfg.lr,
                &mut rg[..amb_tg],
                &mut out[..amb_tg],
            );
            // Pull each annotating tag toward the item's tag-channel
            // position (mapped into the ball where `t_p` lives).
            let mut target = vec![0.0; dim_tag];
            convert::lorentz_to_poincare(state.v_tg.row(pos), &mut target);
            for &t in &it.tags {
                let row = state.t_p.row_mut(t as usize);
                let d = poincare::distance(row, &target);
                let mut g = vec![0.0; dim_tag];
                let mut g_target = vec![0.0; dim_tag];
                poincare::distance_grad(row, &target, 2.0 * d, &mut g, &mut g_target);
                if g.iter().any(|v| !v.is_finite()) {
                    taxorec_telemetry::counter("optim.nonfinite_grad_rows").inc(1);
                    continue;
                }
                vecops::clip_norm(&mut g, GRAD_CLIP);
                poincare::rsgd_step_buffered(
                    row,
                    &g,
                    lr_tag,
                    &mut rg[..dim_tag],
                    &mut out[..dim_tag],
                );
            }
        }
    }
    taxorec_telemetry::counter("core.incremental.applied").inc(batch.len() as u64);
    Ok(IncrementalReport {
        applied: batch.len(),
        new_users,
        new_items,
        new_tags,
        cursor: base_cursor + batch.len() as u64,
    })
}

/// One margin-triplet update on a Lorentz channel: if
/// `margin + d(u,pos)² − d(u,neg)² > 0`, pull `u`↔`pos` together and
/// push `u`↔`neg` apart (all four gradient rows step).
#[allow(clippy::too_many_arguments)]
fn triplet_step(
    users: &mut Matrix,
    items: &mut Matrix,
    u: usize,
    pos: usize,
    neg: usize,
    margin: f64,
    lr: f64,
    rg: &mut [f64],
    out: &mut [f64],
) {
    let ambient = users.cols();
    let d_pos2 = lorentz::distance_sq(users.row(u), items.row(pos));
    let d_neg2 = lorentz::distance_sq(users.row(u), items.row(neg));
    if margin + d_pos2 - d_neg2 <= 0.0 {
        return;
    }
    let mut gu = vec![0.0; ambient];
    let mut gp = vec![0.0; ambient];
    let mut gn = vec![0.0; ambient];
    lorentz_sqdist_grad(users.row(u), items.row(pos), 1.0, &mut gu);
    lorentz_sqdist_grad(users.row(u), items.row(neg), -1.0, &mut gu);
    lorentz_sqdist_grad(items.row(pos), users.row(u), 1.0, &mut gp);
    lorentz_sqdist_grad(items.row(neg), users.row(u), -1.0, &mut gn);
    lorentz_step(users.row_mut(u), &mut gu, lr, rg, out);
    lorentz_step(items.row_mut(pos), &mut gp, lr, rg, out);
    lorentz_step(items.row_mut(neg), &mut gn, lr, rg, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaxoRec;
    use crate::TaxoRecConfig;
    use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};

    fn trained_state() -> ModelState {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 2;
        let mut m = TaxoRec::new(cfg);
        m.fit(&d, &s);
        m.export_state()
    }

    fn journal(state: &ModelState, n: usize) -> Vec<Interaction> {
        let users = state.n_users() as u64;
        let items = state.n_items() as u64;
        let tags = state.n_tags() as u64;
        (0..n)
            .map(|i| {
                let h = splitmix64(0xfeed ^ i as u64);
                let mut tag_list = vec![(h % tags) as u32];
                if i % 7 == 0 {
                    // A never-seen tag every few events.
                    tag_list.push(tags as u32 + (i / 7) as u32);
                }
                Interaction {
                    // Some never-seen users/items mixed in.
                    user: if i % 5 == 0 {
                        users as u32 + (i / 5) as u32
                    } else {
                        (h % users) as u32
                    },
                    item: if i % 9 == 0 {
                        items as u32
                    } else {
                        ((h >> 16) % items) as u32
                    },
                    tags: tag_list,
                }
            })
            .collect()
    }

    #[test]
    fn fold_is_invariant_to_batch_boundaries() {
        let base = trained_state();
        let events = journal(&base, 40);
        let cfg = IncrementalConfig {
            seed: base.config.seed,
            ..IncrementalConfig::default()
        };
        let mut all_at_once = base.clone();
        apply_interactions(&mut all_at_once, 0, &events, &cfg).unwrap();
        let mut chunked = base.clone();
        let mut cursor = 0u64;
        for chunk in events.chunks(7) {
            let r = apply_interactions(&mut chunked, cursor, chunk, &cfg).unwrap();
            cursor = r.cursor;
        }
        assert_eq!(all_at_once.u_ir.data(), chunked.u_ir.data());
        assert_eq!(all_at_once.v_ir.data(), chunked.v_ir.data());
        assert_eq!(all_at_once.u_tg.data(), chunked.u_tg.data());
        assert_eq!(all_at_once.v_tg.data(), chunked.v_tg.data());
        assert_eq!(all_at_once.t_p.data(), chunked.t_p.data());
        assert_eq!(all_at_once.alphas, chunked.alphas);
    }

    #[test]
    fn growth_keeps_the_state_valid_and_on_manifold() {
        let mut state = trained_state();
        let (u0, v0, t0) = (state.n_users(), state.n_items(), state.n_tags());
        let events = journal(&state, 40);
        let cfg = IncrementalConfig {
            seed: 7,
            ..IncrementalConfig::default()
        };
        let r = apply_interactions(&mut state, 0, &events, &cfg).unwrap();
        assert_eq!(r.applied, 40);
        assert!(state.n_users() > u0 && state.n_items() > v0 && state.n_tags() > t0);
        assert_eq!(r.new_users, state.n_users() - u0);
        // Taxonomy still references only the original tags, and the new
        // rows satisfy the manifold constraints the kernels assume.
        assert!(state.u_ir.all_finite() && state.v_ir.all_finite());
        for m in [&state.u_ir, &state.v_ir, &state.u_tg, &state.v_tg] {
            for row in 0..m.rows() {
                assert!(lorentz::constraint_residual(m.row(row)) < 1e-6);
            }
        }
        for row in 0..state.t_p.rows() {
            assert!(vecops::norm(state.t_p.row(row)) < 1.0);
        }
        assert_eq!(state.alphas.len(), state.n_users());
    }

    #[test]
    fn repeated_interactions_pull_the_pair_together() {
        let mut state = trained_state();
        let cfg = IncrementalConfig {
            seed: 3,
            lr: 0.05,
            ..IncrementalConfig::default()
        };
        // A brand-new user repeatedly hitting one item must end up
        // closer to it than a fresh row would be.
        let user = state.n_users() as u32;
        let item = 2u32;
        let batch: Vec<Interaction> = (0..30)
            .map(|_| Interaction {
                user,
                item,
                tags: vec![0],
            })
            .collect();
        apply_interactions(&mut state, 0, &batch[..1], &cfg).unwrap();
        let before = lorentz::distance(state.u_ir.row(user as usize), state.v_ir.row(2));
        apply_interactions(&mut state, 1, &batch[1..], &cfg).unwrap();
        let after = lorentz::distance(state.u_ir.row(user as usize), state.v_ir.row(2));
        assert!(after < before, "before={before} after={after}");
    }

    #[test]
    fn hostile_ids_are_rejected_without_mutating() {
        let mut state = trained_state();
        let fingerprint = state.u_ir.data().to_vec();
        let err = apply_interactions(
            &mut state,
            0,
            &[Interaction {
                user: u32::MAX - 1,
                item: 0,
                tags: vec![],
            }],
            &IncrementalConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("cap"), "{err}");
        assert_eq!(state.u_ir.data(), &fingerprint[..]);
    }
}
