//! The TaxoRec framework (ICDE 2022): joint automated tag-taxonomy
//! construction and recommendation in hyperbolic space.
//!
//! The central type is [`TaxoRec`]; configure it with [`TaxoRecConfig`],
//! train via the [`taxorec_data::Recommender`] trait, then rank items,
//! inspect the constructed taxonomy, or query user–tag distances for
//! interpretability (paper Table V).

pub mod aggregation;
pub mod config;
pub mod export;
pub mod fit_control;
pub mod graph;
pub mod incremental;
pub mod init;
pub mod model;
pub mod optim;

pub use config::TaxoRecConfig;
pub use export::ModelState;
pub use fit_control::{FitControl, FitReport, TrainState};
pub use graph::GraphMatrices;
pub use incremental::{apply_interactions, IncrementalConfig, IncrementalReport, Interaction};
pub use model::{scratch, TaxoRec};
