//! Quickstart: generate a benchmark dataset, train TaxoRec, evaluate, and
//! print recommendations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::eval::{evaluate, top_k_indices};

fn main() {
    // 1. Data: a synthetic analogue of the Ciao benchmark with a planted
    //    tag taxonomy, split 60/20/20 by time per user (paper §V-A).
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    println!("dataset: {} — {:?}", dataset.name, dataset.stats());

    // 2. Model: TaxoRec with light settings for a fast demo.
    let config = TaxoRecConfig {
        epochs: 40,
        ..TaxoRecConfig::fast_test()
    };
    let mut model = TaxoRec::new(config);
    model.fit(&dataset, &split);
    println!(
        "trained {} epochs; loss {:.4} -> {:.4}",
        model.loss_history.len(),
        model.loss_history.first().unwrap(),
        model.loss_history.last().unwrap()
    );

    // 3. Evaluate with unsampled Recall@K / NDCG@K.
    let eval = evaluate(&model, &split, &[10, 20]);
    println!(
        "Recall@10 {:.2}%  Recall@20 {:.2}%  NDCG@10 {:.2}%  NDCG@20 {:.2}%",
        100.0 * eval.mean_recall(0),
        100.0 * eval.mean_recall(1),
        100.0 * eval.mean_ndcg(0),
        100.0 * eval.mean_ndcg(1),
    );

    // 4. Recommend: top-5 unseen items for the first user with history.
    let user = (0..dataset.n_users as u32)
        .find(|&u| !split.train[u as usize].is_empty())
        .expect("some user has history");
    let mut scores = model.scores_for_user(user);
    for &v in &split.train[user as usize] {
        scores[v as usize] = f64::NEG_INFINITY;
    }
    println!("\ntop-5 recommendations for user {user}:");
    for v in top_k_indices(&scores, 5) {
        let tags: Vec<&str> = dataset.item_tags[v]
            .iter()
            .map(|&t| dataset.tag_names[t as usize].as_str())
            .collect();
        println!("  item#{v:<4} tags: {}", tags.join(", "));
    }

    // 5. The jointly constructed taxonomy is available too.
    if let Some(taxo) = model.taxonomy() {
        println!(
            "\nconstructed taxonomy: {} nodes, depth {}",
            taxo.len(),
            taxo.depth()
        );
    }
}
