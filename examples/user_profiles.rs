//! Interpretable user profiles (paper Table V / RQ5): for sample users,
//! show the nearest tags in the learned metric space, the personalized
//! tag weight α, and tag-consistent recommendations.
//!
//! ```text
//! cargo run --release --example user_profiles
//! ```

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::eval::top_k_indices;

fn main() {
    let dataset = generate_preset(Preset::AmazonBook, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut model = TaxoRec::new(TaxoRecConfig {
        epochs: 40,
        ..TaxoRecConfig::fast_test()
    });
    model.fit(&dataset, &split);

    // Users sorted by α (Eq. 16): high α = consistent tag-driven taste,
    // exactly the users whose profiles tags explain well.
    let mut users: Vec<u32> = (0..dataset.n_users as u32)
        .filter(|&u| split.train[u as usize].len() >= 3)
        .collect();
    users.sort_by(|&a, &b| {
        model.alphas()[b as usize]
            .partial_cmp(&model.alphas()[a as usize])
            .unwrap()
    });

    println!(
        "tag-based profiles of the 3 most tag-consistent users of {}:\n",
        dataset.name
    );
    for &u in users.iter().take(3) {
        let alpha = model.alphas()[u as usize];
        let top_tags = model.user_top_tags(u, 4);
        println!("User {u} (alpha = {alpha:.2})");
        println!(
            "  nearest tags : {}",
            top_tags
                .iter()
                .map(|&(t, d)| format!("<{}> ({d:.2})", dataset.tag_names[t as usize]))
                .collect::<Vec<_>>()
                .join("; ")
        );
        let mut scores = model.scores_for_user(u);
        for &v in &split.train[u as usize] {
            scores[v as usize] = f64::NEG_INFINITY;
        }
        let recs: Vec<String> = top_k_indices(&scores, 4)
            .into_iter()
            .map(|v| {
                let tags: Vec<&str> = dataset.item_tags[v]
                    .iter()
                    .take(2)
                    .map(|&t| dataset.tag_names[t as usize].as_str())
                    .collect();
                format!("item#{v} [{}]", tags.join(", "))
            })
            .collect();
        println!("  recommended  : {}\n", recs.join("; "));
    }
    println!("Higher-α users get recommendations dominated by their nearest tags;");
    println!("Eq. 17 weights the tag-relevant distance by α per user.");
}
