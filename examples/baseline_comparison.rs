//! A miniature Table II: TaxoRec against a few representative baselines
//! on one dataset analogue, trained and evaluated identically.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use taxorec::baselines::{zoo, TrainOpts};
use taxorec::core::TaxoRecConfig;
use taxorec::data::{generate_preset, Preset, Scale, Split};
use taxorec::eval::{evaluate, TextTable};

fn main() {
    let dataset = generate_preset(Preset::AmazonCd, Scale::Tiny);
    let split = Split::standard(&dataset);
    println!("{} — {:?}\n", dataset.name, dataset.stats());

    let opts = TrainOpts {
        dim: 24,
        epochs: 40,
        ..TrainOpts::default()
    };
    let cfg = TaxoRecConfig {
        dim_ir: 18,
        dim_tag: 6,
        epochs: 40,
        ..TaxoRecConfig::fast_test()
    };
    let mut table = TextTable::new(&["Method", "Recall@10", "NDCG@10"]);
    for name in ["BPRMF", "CML", "LightGCN", "HGCF", "TaxoRec"] {
        let mut model = zoo::by_name(name, &opts, &cfg, 3).expect("known model");
        model.fit(&dataset, &split);
        let e = evaluate(model.as_ref(), &split, &[10]);
        table.row(vec![
            name.to_string(),
            format!("{:.2}%", 100.0 * e.mean_recall(0)),
            format!("{:.2}%", 100.0 * e.mean_ndcg(0)),
        ]);
    }
    println!("{}", table.render());
    println!("(full 15-method grid: cargo run --release -p taxorec-bench --bin table2)");
}
