//! Streaming ingestion: train a tiny model, serve it with the online
//! updater enabled, stream interaction batches — including never-seen
//! users, items, and tags — into `POST /ingest`, and watch the served
//! model generation advance without a restart.
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::serve::{serve_online, Checkpoint, IngestOptions, ServeOptions, ServingModel};

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn get(addr: SocketAddr, target: &str) -> String {
    request(addr, &format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn post_ingest(addr: SocketAddr, body: &str) -> String {
    request(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn ingest_card(healthz: &str) -> &str {
    let at = healthz.find("\"ingest\":").map(|i| i + 9).unwrap_or(0);
    &healthz[at..healthz.len().saturating_sub(1)]
}

fn main() {
    // 1. Train a small model and seal it into a checkpoint — the same
    //    artifact `taxorec-serve train-demo` would write to disk.
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut model = TaxoRec::new(TaxoRecConfig {
        epochs: 10,
        ..TaxoRecConfig::fast_test()
    });
    model.fit(&dataset, &split);
    let base = Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train);
    println!(
        "trained: {} users, {} items, {} tags",
        base.state.n_users(),
        base.state.n_items(),
        base.state.n_tags()
    );

    // 2. Serve with ingestion enabled: `serve_online` keeps the base
    //    checkpoint for the updater thread, which folds journaled
    //    interactions between ticks and swaps fresh generations into
    //    the serving slot (same path as `/admin/reload`).
    let serving = ServingModel::new(base.clone()).expect("serving model");
    let handle = serve_online(
        Arc::new(serving),
        base,
        "127.0.0.1:0",
        ServeOptions {
            ingest: IngestOptions {
                tick: Duration::from_millis(100),
                drift_limit: 8,
                ..IngestOptions::default()
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();
    println!("serving on http://{addr} (tick 100ms)");
    println!("before ingest: {}", ingest_card(&get(addr, "/healthz")));

    // 3. Stream batches. Tag names are resolved by name, so never-seen
    //    tags ("flash-sale", …) are allocated fresh ids, placed via the
    //    Einstein midpoint of their co-occurring items, and grafted
    //    onto the live taxonomy as leaves.
    let n_users = 64u32;
    for batch in 0..6 {
        let mut interactions = Vec::new();
        for j in 0..8 {
            let user = (batch * 17 + j * 5) % (n_users + 8); // some never-seen
            let item = (batch * 13 + j * 3) % 48;
            let tag = if j == 0 {
                format!("\"flash-sale-{batch}\"")
            } else {
                format!("\"live-{}\"", (batch + j) % 4)
            };
            interactions.push(format!(
                "{{\"user\":{user},\"item\":{item},\"tags\":[{tag}]}}"
            ));
        }
        let body = format!("{{\"interactions\":[{}]}}", interactions.join(","));
        let reply = post_ingest(addr, &body);
        let status = reply.split_whitespace().nth(1).unwrap_or("?");
        let payload = reply.rsplit("\r\n\r\n").next().unwrap_or("").trim();
        println!("batch {batch}: {status} {payload}");
        std::thread::sleep(Duration::from_millis(60));
    }

    // 4. Wait for the updater to drain the journal, then inspect the
    //    health card: `applied` catches `accepted`, `staleness` returns
    //    to zero, and `cursor` records how far into the journal the
    //    served generation has folded.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = get(addr, "/healthz");
        let card = ingest_card(&health);
        if card.contains("\"staleness\":0") && !card.contains("\"cursor\":null") {
            println!("after ingest:  {card}");
            break;
        }
        if Instant::now() > deadline {
            println!("updater did not catch up in time: {card}");
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // 5. The swapped generation serves immediately — recommendations
    //    for a user that did not exist before the stream started.
    let reply = get(addr, &format!("/recommend?user={}&k=5", n_users + 2));
    let payload = reply.rsplit("\r\n\r\n").next().unwrap_or("").trim();
    println!("never-seen user {}: {payload}", n_users + 2);

    handle.shutdown();
    println!("done");
}
