//! Building a dataset by hand — the paper's Fig. 1 restaurant scenario —
//! training TaxoRec on it, and round-tripping through the TSV format.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{tsv, Dataset, Interaction, Recommender, Split};
use taxorec::eval::top_k_indices;

fn main() {
    // Tags: the Fig. 1 hierarchy — <Asian food> ⊃ <Japanese food> ⊃ <Sushi>,
    // plus <Italian food> and <Pizza>.
    let tag_names: Vec<String> = [
        "Asian food",
        "Japanese food",
        "Sushi",
        "Italian food",
        "Pizza",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // Items: 0 Hand Roll, 1 Salmon Sashimi, 2 Cheese Pizza, 3 Margherita,
    // 4 Tuna Nigiri (the held-out sushi we hope to recommend).
    let item_names = [
        "Hand Roll",
        "Salmon Sashimi",
        "Cheese Pizza",
        "Margherita",
        "Tuna Nigiri",
    ];
    let item_tags = vec![
        vec![0, 1, 2],
        vec![0, 1],
        vec![3, 4],
        vec![3, 4],
        vec![0, 1, 2],
    ];
    // Users: Jack and Lisa like Japanese food; Mary is eclectic. Repeat
    // the trio to give the model a few collaborative neighbours.
    let mut interactions = Vec::new();
    for g in 0..8u32 {
        let (jack, lisa, mary) = (3 * g, 3 * g + 1, 3 * g + 2);
        for (i, &(u, v)) in [
            (jack, 0u32),
            (jack, 1),
            (lisa, 0),
            (mary, 1),
            (mary, 2),
            (mary, 3),
        ]
        .iter()
        .enumerate()
        {
            interactions.push(Interaction {
                user: u,
                item: v,
                ts: i as i64,
            });
        }
        // A couple of users who already found the Tuna Nigiri.
        interactions.push(Interaction {
            user: lisa,
            item: 4,
            ts: 10,
        });
    }
    let dataset = Dataset {
        name: "fig1-restaurants".into(),
        n_users: 24,
        n_items: 5,
        n_tags: 5,
        interactions,
        item_tags,
        tag_names,
        taxonomy_truth: None,
    };
    dataset
        .validate()
        .expect("hand-built dataset is consistent");

    // Persist and reload through the TSV format (drop-in for real data).
    let dir = std::env::temp_dir().join("taxorec-example");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("restaurants");
    tsv::save(&dataset, &stem).unwrap();
    let reloaded = tsv::load(&stem, "fig1-restaurants").unwrap();
    println!(
        "TSV round trip: {} interactions, {} tags\n",
        reloaded.interactions.len(),
        reloaded.n_tags
    );

    // Train on everything (demo) and ask what Jack should try next.
    let split = Split::temporal(&dataset, 1.0, 0.0);
    let mut model = TaxoRec::new(TaxoRecConfig {
        epochs: 60,
        dim_ir: 8,
        dim_tag: 4,
        taxo_min_node: 2,
        ..TaxoRecConfig::fast_test()
    });
    model.fit(&dataset, &split);

    let jack = 0u32;
    let mut scores = model.scores_for_user(jack);
    for &v in &split.train[jack as usize] {
        scores[v as usize] = f64::NEG_INFINITY;
    }
    println!("Jack interacted with Hand Roll and Salmon Sashimi; next suggestions:");
    for v in top_k_indices(&scores, 3) {
        println!("  {}", item_names[v]);
    }
    println!("\nExpected: Tuna Nigiri (shares <Japanese food>/<Sushi>) above the pizzas.");
}
