//! Taxonomy explorer: construct a tag taxonomy from scratch — exactly the
//! paper's RQ4 scenario — and score it against the planted ground truth.
//!
//! ```text
//! cargo run --release --example taxonomy_explorer
//! ```

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::taxonomy::{ancestor_scores, random_pair_precision, sibling_coherence};

fn main() {
    let dataset = generate_preset(Preset::Yelp, Scale::Tiny);
    let split = Split::standard(&dataset);
    println!(
        "{}: {} tags, planted tree depth {}\n",
        dataset.name,
        dataset.n_tags,
        dataset.taxonomy_truth.as_ref().unwrap().max_depth() + 1
    );

    // Joint training refines the tag embeddings the construction runs on.
    let mut model = TaxoRec::new(TaxoRecConfig {
        epochs: 40,
        ..TaxoRecConfig::fast_test()
    });
    model.fit(&dataset, &split);
    let taxo = model.taxonomy().expect("λ > 0 constructs a taxonomy");

    println!(
        "constructed taxonomy ({} nodes, depth {}):",
        taxo.len(),
        taxo.depth()
    );
    print!("{}", taxo.render(&dataset.tag_names, 4));

    let truth = dataset.taxonomy_truth.as_ref().unwrap();
    let scores = ancestor_scores(taxo, truth);
    println!(
        "\nancestor recovery: precision {:.3}, recall {:.3}, F1 {:.3}",
        scores.precision, scores.recall, scores.f1
    );
    println!(
        "random-pairing precision baseline: {:.3}",
        random_pair_precision(truth)
    );
    println!(
        "sibling coherence: {:.3} (1.0 = every node thematically pure)",
        sibling_coherence(taxo, truth)
    );
}
